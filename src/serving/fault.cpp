#include "serving/fault.h"

#include <algorithm>
#include <limits>
#include <random>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** Uniform double in [0, 1) from the top 53 bits — the same
 *  portable transform as the trace generators (trace.cpp). */
double
uniform01(std::mt19937_64 &rng)
{
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double
uniformIn(std::mt19937_64 &rng, double lo, double hi)
{
    return lo + (hi - lo) * uniform01(rng);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Crash:
        return "crash";
    case FaultKind::Recover:
        return "recover";
    case FaultKind::SlowStart:
        return "slow_start";
    case FaultKind::SlowEnd:
        return "slow_end";
    case FaultKind::DegradeStart:
        return "degrade_start";
    case FaultKind::DegradeEnd:
        return "degrade_end";
    case FaultKind::DrainStart:
        return "drain_start";
    case FaultKind::DrainEnd:
        return "drain_end";
    case FaultKind::Swap:
        return "swap";
    }
    ST_PANIC("unknown fault kind");
}

FaultPlan
seededFaultPlan(const SeededFaultOptions &o)
{
    ST_CHECK(o.num_replicas >= 1, "fault plan needs replicas");
    ST_CHECK(o.horizon_ms > 0.0, "fault horizon domain");
    ST_CHECK(o.crash_prob >= 0.0 && o.crash_prob <= 1.0 &&
                 o.slow_prob >= 0.0 && o.slow_prob <= 1.0 &&
                 o.drain_prob >= 0.0 && o.drain_prob <= 1.0 &&
                 o.degrade_prob >= 0.0 && o.degrade_prob <= 1.0,
             "fault probability domain");
    ST_CHECK(o.min_slow_factor > 1.0 &&
                 o.max_slow_factor >= o.min_slow_factor,
             "slow factor domain");

    std::mt19937_64 rng(o.seed);
    FaultPlan plan;
    // Draw order (per replica, then per window kind) is part of
    // the contract: reordering the draws changes every seeded plan
    // and with it the property suite's coverage accounting.
    for (int replica = 0; replica < o.num_replicas; ++replica) {
        if (uniform01(rng) < o.crash_prob) {
            double down =
                uniformIn(rng, 0.15, 0.60) * o.horizon_ms;
            double up =
                down + uniformIn(rng, 0.10, 0.30) * o.horizon_ms;
            plan.events.push_back(
                {down, replica, FaultKind::Crash, 1.0});
            plan.events.push_back(
                {up, replica, FaultKind::Recover, 1.0});
        }
        if (uniform01(rng) < o.slow_prob) {
            double start =
                uniformIn(rng, 0.05, 0.50) * o.horizon_ms;
            double end =
                start + uniformIn(rng, 0.10, 0.40) * o.horizon_ms;
            double factor = uniformIn(rng, o.min_slow_factor,
                                      o.max_slow_factor);
            plan.events.push_back(
                {start, replica, FaultKind::SlowStart, factor});
            plan.events.push_back(
                {end, replica, FaultKind::SlowEnd, 1.0});
        }
        if (uniform01(rng) < o.drain_prob) {
            double start =
                uniformIn(rng, 0.20, 0.60) * o.horizon_ms;
            double end =
                start + uniformIn(rng, 0.10, 0.30) * o.horizon_ms;
            plan.events.push_back(
                {start, replica, FaultKind::DrainStart, 1.0});
            plan.events.push_back(
                {end, replica, FaultKind::DrainEnd, 1.0});
        }
        if (uniform01(rng) < o.degrade_prob) {
            double start =
                uniformIn(rng, 0.10, 0.50) * o.horizon_ms;
            double end =
                start + uniformIn(rng, 0.15, 0.40) * o.horizon_ms;
            plan.events.push_back(
                {start, replica, FaultKind::DegradeStart, 1.0});
            plan.events.push_back(
                {end, replica, FaultKind::DegradeEnd, 1.0});
        }
    }
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : events_(std::move(plan.events))
{
    for (const auto &e : events_) {
        ST_CHECK(e.at_ms >= 0.0, "fault times must be "
                                 "non-negative");
        ST_CHECK(e.replica >= 0, "fault replica domain");
        ST_CHECK(e.kind != FaultKind::SlowStart || e.factor > 0.0,
                 "slowdown factor must be positive");
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at_ms < b.at_ms;
                     });
}

double
FaultInjector::nextAtMs() const
{
    return exhausted() ? std::numeric_limits<double>::infinity()
                       : events_[next_].at_ms;
}

std::vector<FaultEvent>
FaultInjector::drainDue(double now)
{
    std::vector<FaultEvent> due;
    while (!exhausted() && events_[next_].at_ms <= now)
        due.push_back(events_[next_++]);
    return due;
}

} // namespace serving
} // namespace streamtensor
