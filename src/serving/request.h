/**
 * @file
 * Serving-layer request descriptor. All serving time is *simulated
 * milliseconds* — the scheduler is a discrete-event simulator
 * driven by per-step accelerator costs, so there is deliberately
 * no wall clock anywhere in src/serving/ (replay tests assert
 * bit-identical schedules across runs).
 */

#ifndef STREAMTENSOR_SERVING_REQUEST_H
#define STREAMTENSOR_SERVING_REQUEST_H

#include <cstdint>

namespace streamtensor {
namespace serving {

/** One inference request of an arrival trace. */
struct Request
{
    /** Unique per trace; ties in arrival time break by id. */
    int64_t id = 0;

    /** Simulated arrival time. */
    double arrival_ms = 0.0;

    int64_t input_len = 1;
    int64_t output_len = 1;

    /** Priority class; lower value is served first. FIFO within a
     *  class. */
    int priority = 0;
};

/** Why a request left the system without completing. */
enum class RejectReason
{
    /** The bounded request queue was full on arrival. */
    QueueFull,

    /** The request's reserved context exceeds the total KV budget
     *  (or the largest bucket) — it could never be scheduled. */
    TooLong,
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_REQUEST_H
