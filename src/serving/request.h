/**
 * @file
 * Serving-layer request descriptor. All serving time is *simulated
 * milliseconds* — the scheduler is a discrete-event simulator
 * driven by per-step accelerator costs, so there is deliberately
 * no wall clock anywhere in src/serving/ (replay tests assert
 * bit-identical schedules across runs).
 */

#ifndef STREAMTENSOR_SERVING_REQUEST_H
#define STREAMTENSOR_SERVING_REQUEST_H

#include <cstdint>

namespace streamtensor {
namespace serving {

/** One inference request of an arrival trace. */
struct Request
{
    /** Unique per trace; ties in arrival time break by id. */
    int64_t id = 0;

    /** Simulated arrival time. */
    double arrival_ms = 0.0;

    int64_t input_len = 1;
    int64_t output_len = 1;

    /** Priority class; lower value is served first. FIFO within a
     *  class. */
    int priority = 0;

    /** Shared-prefix identity: every request with the same nonzero
     *  prefix_id starts with the identical prefix_len prompt
     *  tokens (a common system prompt), so the paged KV pool can
     *  pin one physical copy of those pages across all of them.
     *  0 = no shared prefix. */
    int64_t prefix_id = 0;

    /** Leading prompt tokens covered by prefix_id; must satisfy
     *  0 <= prefix_len <= input_len (0 unless prefix_id != 0). */
    int64_t prefix_len = 0;

    /** Absolute simulated deadline; 0 = none. A *queued* request
     *  whose deadline has passed is expired (shed) instead of
     *  wedging the queue; a resident one always runs to completion
     *  and merely counts a deadline miss if it finishes late —
     *  work already paid for is never thrown away mid-decode. */
    double deadline_ms = 0.0;
};

/** Why a request left the system without completing. */
enum class RejectReason
{
    /** The bounded request queue was full on arrival. */
    QueueFull,

    /** The request's maximum context (input_len + output_len - 1,
     *  the context of its last decode step) exceeds the bucket
     *  ladder or the total KV capacity — it could never run to
     *  completion under either admission policy. */
    TooLong,

    /** The request's deadline passed while it was still queued
     *  (overload shedding; never applied to resident sequences). */
    DeadlineExpired,

    /** The scheduler (or its replica) entered drain mode — finish
     *  residents, admit nothing — while the request was queued or
     *  before it arrived. */
    Drained,
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_REQUEST_H
