#include "serving/replica.h"

#include <algorithm>
#include <set>
#include <utility>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** Largest context of the request's lifetime — its final decode
 *  step (see the convention note in scheduler.h). */
int64_t
maxContext(const Request &r)
{
    return r.input_len + r.output_len - 1;
}

KvPoolOptions
poolOptionsFor(const SchedulerOptions &options, bool paged)
{
    KvPoolOptions pool_options;
    pool_options.page_tokens = options.page_tokens;
    pool_options.total_pages =
        paged ? options.kv_budget_tokens / options.page_tokens : 1;
    return pool_options;
}

} // namespace

void
sortAndValidateTrace(std::vector<Request> &trace)
{
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival_ms < b.arrival_ms ||
                                (a.arrival_ms == b.arrival_ms &&
                                 a.id < b.id);
                     });
    std::set<int64_t> ids;
    for (const auto &r : trace) {
        ST_CHECK(r.input_len >= 1 && r.output_len >= 1,
                 "request lengths must be positive");
        ST_CHECK(r.arrival_ms >= 0.0,
                 "arrivals must be non-negative");
        ST_CHECK(r.deadline_ms >= 0.0,
                 "deadlines must be non-negative");
        ST_CHECK(r.prefix_id >= 0 && r.prefix_len >= 0 &&
                     r.prefix_len <= r.input_len &&
                     (r.prefix_id != 0 || r.prefix_len == 0),
                 "malformed shared prefix");
        ST_CHECK(ids.insert(r.id).second,
                 "trace ids must be unique");
    }
}

void
validateSchedulerOptions(const SchedulerOptions &options)
{
    ST_CHECK(options.max_batch >= 1, "need batch room");
    ST_CHECK(options.kv_budget_tokens >= 1, "need a KV budget");
    ST_CHECK(options.max_queue_depth >= 0, "queue depth domain");
    ST_CHECK(options.max_steps >= 1, "step limit domain");
    ST_CHECK(options.metrics.auto_record_limit >= 0,
             "record limit domain");
    if (options.admission == KvAdmission::Paged) {
        ST_CHECK(options.page_tokens >= 1, "page size domain");
        ST_CHECK(options.kv_budget_tokens >= options.page_tokens,
                 "KV budget smaller than one page");
    }
}

ReplicaEngine::ReplicaEngine(const SchedulerOptions &options,
                             StepCostModel &cost, int replica_id)
    : options_(options), cost_(&cost), replica_id_(replica_id),
      paged_(options.admission == KvAdmission::Paged),
      queue_(options.max_queue_depth),
      pool_(poolOptionsFor(options_, paged_))
{
    validateSchedulerOptions(options_);
    if (paged_)
        result_.metrics.pool_pages = pool_.totalPages();
}

double
ReplicaEngine::stepEndMs() const
{
    ST_CHECK(busy_, "stepEndMs() with no step in flight");
    return step_start_ms_ + step_ms_;
}

int64_t
ReplicaEngine::kvLoadTokens() const
{
    int64_t resident = paged_
                           ? pool_.activePages() * pool_.pageTokens()
                           : kv_in_use_;
    return resident + queue_.queuedInputTokens();
}

int64_t
ReplicaEngine::reservedKv(const Request &r) const
{
    // Reserved KV under Reserve admission: the final bucketed
    // context, held from admission to completion (conservative —
    // no preemption). -1 = can never be served.
    if (maxContext(r) > options_.buckets.max_len)
        return -1;
    int64_t reserve =
        models::bucketLen(maxContext(r), options_.buckets);
    return reserve <= options_.kv_budget_tokens ? reserve : -1;
}

bool
ReplicaEngine::servable(const Request &r) const
{
    if (paged_) {
        // Servable under Paged admission when the final decode
        // step's shape exists on the bucket ladder and its page
        // demand fits the whole pool (the guarantee that a lone
        // resident sequence can always grow, so preemption
        // terminates).
        return maxContext(r) <= options_.buckets.max_len &&
               pool_.pagesFor(maxContext(r)) <= pool_.totalPages();
    }
    return reservedKv(r) >= 0;
}

void
ReplicaEngine::reject(const Request &r, RejectReason reason,
                      double at_ms)
{
    switch (reason) {
    case RejectReason::QueueFull:
        ++result_.metrics.rejected_queue_full;
        break;
    case RejectReason::TooLong:
        ++result_.metrics.rejected_too_long;
        break;
    case RejectReason::DeadlineExpired:
        ++result_.metrics.expired_deadline;
        break;
    case RejectReason::Drained:
        ++result_.metrics.rejected_drained;
        break;
    }
    result_.rejected.push_back(
        {r.id, r.arrival_ms, reason, at_ms});
}

void
ReplicaEngine::offer(const Request &r, double now)
{
    // Callers ingest arrivals strictly in (arrival, id) order, so
    // result().rejected inherits that order no matter how many
    // arrivals one ingest round drains.
    if (!servable(r))
        reject(r, RejectReason::TooLong, now);
    else if (draining_)
        reject(r, RejectReason::Drained, now);
    else if (r.deadline_ms > 0.0 && r.deadline_ms <= now)
        reject(r, RejectReason::DeadlineExpired, now);
    else if (!queue_.push(r))
        reject(r, RejectReason::QueueFull, now);
}

void
ReplicaEngine::readmit(const Request &r, const ResumeState &state)
{
    resume_state_[r.id] = state;
    queue_.pushFront(r);
}

ResumeState
ReplicaEngine::takeResumeState(const Request &r)
{
    auto it = resume_state_.find(r.id);
    if (it == resume_state_.end())
        return ResumeState{};
    ResumeState state = it->second;
    resume_state_.erase(it);
    return state;
}

void
ReplicaEngine::expireDeadlines(double now)
{
    for (const Request &r : queue_.expireBefore(now)) {
        // A preempted request can expire too; its progress dies
        // with it.
        resume_state_.erase(r.id);
        reject(r, RejectReason::DeadlineExpired, now);
    }
}

void
ReplicaEngine::shedQueueAsDrained(double now)
{
    for (const Request &r : queue_.drainAll()) {
        resume_state_.erase(r.id);
        reject(r, RejectReason::Drained, now);
    }
}

void
ReplicaEngine::setSlowFactor(double factor)
{
    ST_CHECK(factor > 0.0, "slow factor must be positive");
    slow_factor_ = factor;
}

bool
ReplicaEngine::launchStep(double now)
{
    ST_ASSERT(!busy_, "launchStep() with a step in flight");
    if (!hasWork())
        return false;

    // --- Paged growth: every resident sequence acquires the
    // pages its next step needs. Under pressure, preempt the
    // lowest-priority-class, most-recently-admitted other
    // sequence back to the queue (front of its class) and
    // retry; termination is guaranteed because a lone
    // sequence's demand always fits the pool (servable()).
    std::vector<int64_t> preempted_now;
    if (paged_ && !active_.empty()) {
        std::vector<bool> gone(active_.size(), false);
        auto preempt = [&](size_t victim) {
            ActiveSeq &seq = active_[victim];
            pool_.release(seq.req.id);
            ResumeState state;
            state.generated = seq.generated;
            state.ever_prefilled = seq.ever_prefilled;
            state.first_token_ms = seq.first_token_ms;
            state.preemptions = seq.preemptions + 1;
            state.failovers = seq.failovers;
            resume_state_[seq.req.id] = state;
            queue_.pushFront(seq.req);
            preempted_now.push_back(seq.req.id);
            ++result_.metrics.preemptions;
            gone[victim] = true;
        };
        for (size_t i = 0; i < active_.size(); ++i) {
            if (gone[i])
                continue;
            while (!pool_.grow(active_[i].req.id,
                               active_[i].req.input_len +
                                   active_[i].generated)) {
                int victim = -1;
                for (size_t j = 0; j < active_.size(); ++j) {
                    if (j == i || gone[j])
                        continue;
                    if (victim < 0 ||
                        active_[j].req.priority >
                            active_[victim].req.priority ||
                        (active_[j].req.priority ==
                             active_[victim].req.priority &&
                         active_[j].admit_tick >
                             active_[victim].admit_tick))
                        victim = static_cast<int>(j);
                }
                ST_ASSERT(victim >= 0,
                          "paged growth wedged with no "
                          "preemption victim");
                preempt(static_cast<size_t>(victim));
            }
        }
        size_t keep = 0;
        for (size_t i = 0; i < active_.size(); ++i)
            if (!gone[i])
                active_[keep++] = std::move(active_[i]);
        active_.resize(keep);
    }

    // --- Admission from the queue head while the batch has
    // room and the head's *current* need (Paged) or final
    // reservation (Reserve) fits. Strictly head-of-line: a
    // blocked head is never jumped by a later request. A
    // sequence preempted this very iteration is not readmitted
    // in the same breath — the pressure that evicted it is
    // still standing. A draining engine admits nothing.
    while (!draining_ &&
           static_cast<int64_t>(active_.size()) <
               options_.max_batch &&
           !queue_.empty()) {
        const Request &head = queue_.front();
        if (std::find(preempted_now.begin(), preempted_now.end(),
                      head.id) != preempted_now.end())
            break;
        ActiveSeq seq;
        if (paged_) {
            auto rs = resume_state_.find(head.id);
            int64_t generated = rs != resume_state_.end()
                                    ? rs->second.generated
                                    : 0;
            pool_.bind(head.id, head.prefix_id, head.prefix_len);
            if (!pool_.grow(head.id, head.input_len + generated)) {
                pool_.release(head.id);
                break;
            }
            if (rs != resume_state_.end()) {
                seq.generated = rs->second.generated;
                seq.ever_prefilled = rs->second.ever_prefilled;
                seq.first_token_ms = rs->second.first_token_ms;
                seq.preemptions = rs->second.preemptions;
                seq.failovers = rs->second.failovers;
                resume_state_.erase(rs);
            }
        } else {
            int64_t reserve = reservedKv(head);
            ST_ASSERT(reserve >= 0, "unservable request queued");
            if (kv_in_use_ + reserve > options_.kv_budget_tokens)
                break;
            // Reserve admission never preempts, but a failover
            // can still hand this engine a part-done sequence.
            ResumeState state = takeResumeState(head);
            seq.generated = state.generated;
            seq.ever_prefilled = state.ever_prefilled;
            seq.first_token_ms = state.first_token_ms;
            seq.preemptions = state.preemptions;
            seq.failovers = state.failovers;
            seq.kv_reserved = reserve;
            kv_in_use_ += reserve;
        }
        seq.req = queue_.pop();
        seq.admit_tick = admit_ticks_++;
        active_.push_back(std::move(seq));
    }
    if (active_.empty() && draining_)
        return false; // residents done; queued work is not ours
    // active is non-empty: when it was empty, the pool (or
    // budget) was entirely free and every queued request's
    // current need fits it by the servability check.
    ST_ASSERT(!active_.empty(), "admission stalled");

    // Group the batch by bucketed shapes (map order keeps the
    // group sequence deterministic). An un-prefilled sequence
    // runs a prefill-shaped pass over its full context —
    // input_len for a fresh one, input_len + generated for a
    // readmitted one recomputing its dropped KV.
    std::map<models::BlockShapes, int64_t> shape_counts;
    for (const auto &seq : active_) {
        int64_t ctx = seq.req.input_len + seq.generated;
        models::BlockShapes shapes =
            seq.prefilled
                ? models::bucketedDecodeShapes(ctx,
                                               options_.buckets)
                : models::bucketedPrefillShapes(ctx,
                                                options_.buckets);
        ++shape_counts[shapes];
    }
    std::vector<runtime::StepGroup> groups;
    groups.reserve(shape_counts.size());
    for (const auto &[shapes, count] : shape_counts)
        groups.push_back({shapes, count});

    double step_ms = cost_->stepMs(groups);
    ST_CHECK(step_ms > 0.0,
             "cost model must advance simulated time");
    step_ms *= slow_factor_;

    // Cold start: a step launched while the weight stream is in
    // flight is gated on residency (overlapped per layer or held
    // to the stream's end — scheduler.h). The wait is charged to
    // the step itself, so completion timing, metrics, and records
    // all see it.
    double weights_wait_ms = 0.0;
    const WeightStreamPlan &stream = options_.cold_start.plan;
    if (!stream.empty() && now < stream.end_ms) {
        double gated_end = stream.gatedComputeEndMs(
            now, step_ms, options_.cold_start.overlap);
        weights_wait_ms =
            std::max(0.0, gated_end - (now + step_ms));
        step_ms += weights_wait_ms;
        result_.metrics.weight_stall_ms += weights_wait_ms;
    }

    pending_batch_ = static_cast<int64_t>(active_.size());
    pending_pages_active_ = paged_ ? pool_.activePages() : 0;
    if (options_.record_steps) {
        StepRecord record;
        record.start_ms = now;
        record.step_ms = step_ms;
        record.weights_wait_ms = weights_wait_ms;
        for (const auto &seq : active_)
            (seq.prefilled ? record.decode_ids
                           : record.prefill_ids)
                .push_back(seq.req.id);
        record.preempted_ids = preempted_now;
        if (paged_) {
            record.kv_reserved =
                pool_.activePages() * pool_.pageTokens();
            record.pages_active = pool_.activePages();
            record.pages_cached = pool_.cachedPages();
            record.pages_free = pool_.freePages();
        } else {
            record.kv_reserved = kv_in_use_;
        }
        record.queue_depth = queue_.size();
        pending_record_ = std::move(record);
    }

    busy_ = true;
    step_start_ms_ = now;
    step_ms_ = step_ms;
    return true;
}

void
ReplicaEngine::completeStep()
{
    ST_ASSERT(busy_, "completeStep() with no step in flight");
    double now = step_start_ms_ + step_ms_;
    ServingMetrics &metrics = result_.metrics;

    if (options_.record_steps) {
        result_.steps.push_back(std::move(pending_record_));
        pending_record_ = StepRecord{};
    }
    metrics.busy_ms += step_ms_;
    ++metrics.steps;
    metrics.total_batched_seqs += pending_batch_;
    if (paged_)
        metrics.page_step_sum += pending_pages_active_;

    // Token accounting: every step a sequence runs advances it
    // by one output token — the first prefill emits the first
    // token, a recompute prefill emits the next token its
    // preemption (or failover) interrupted, and each decode
    // emits one more. Finished sequences retire at this step's
    // end, releasing their pages / reservation.
    for (auto &seq : active_) {
        if (!seq.prefilled) {
            seq.prefilled = true;
            if (!seq.ever_prefilled) {
                seq.ever_prefilled = true;
                seq.first_token_ms = now;
            }
        }
        ++seq.generated;
        if (seq.generated == seq.req.output_len) {
            RequestMetrics done;
            done.id = seq.req.id;
            done.priority = seq.req.priority;
            done.input_len = seq.req.input_len;
            done.output_len = seq.req.output_len;
            done.arrival_ms = seq.req.arrival_ms;
            done.first_token_ms = seq.first_token_ms;
            done.finish_ms = now;
            done.preemptions = seq.preemptions;
            done.failovers = seq.failovers;
            done.replica = replica_id_;
            done.deadline_ms = seq.req.deadline_ms;
            metrics.recordCompletion(done, options_.metrics);
            if (paged_)
                pool_.release(seq.req.id);
            else
                kv_in_use_ -= seq.kv_reserved;
        }
    }
    active_.erase(
        std::remove_if(active_.begin(), active_.end(),
                       [](const ActiveSeq &seq) {
                           return seq.generated ==
                                  seq.req.output_len;
                       }),
        active_.end());

    busy_ = false;
}

std::vector<EvacuatedSeq>
ReplicaEngine::crash()
{
    // Abandon any in-flight step: its metrics, record, and token
    // progress were never committed, so the simulated work is
    // simply lost.
    busy_ = false;
    pending_record_ = StepRecord{};

    std::vector<EvacuatedSeq> out;
    out.reserve(active_.size() +
                static_cast<size_t>(queue_.size()));
    for (const auto &seq : active_) {
        ResumeState state;
        state.generated = seq.generated;
        state.ever_prefilled = seq.ever_prefilled;
        state.first_token_ms = seq.first_token_ms;
        state.preemptions = seq.preemptions;
        state.failovers = seq.failovers;
        out.push_back({seq.req, state});
    }
    active_.clear();
    for (const Request &r : queue_.drainAll())
        out.push_back({r, takeResumeState(r)});
    ST_ASSERT(resume_state_.empty(),
              "resume state for a request that was neither "
              "resident nor queued");

    // The pool's contents die with the replica — including
    // retained prefix pages — but its cumulative counters carry
    // over so finalize() reports whole-lifetime stats.
    pool_stats_base_.prefix_hit_pages +=
        pool_.stats().prefix_hit_pages;
    pool_stats_base_.prefix_miss_pages +=
        pool_.stats().prefix_miss_pages;
    pool_stats_base_.evicted_cached_pages +=
        pool_.stats().evicted_cached_pages;
    peak_pages_active_base_ =
        std::max(peak_pages_active_base_,
                 pool_.stats().peak_active_pages);
    pool_ = KvPool(poolOptionsFor(options_, paged_));
    kv_in_use_ = 0;
    return out;
}

std::vector<EvacuatedSeq>
ReplicaEngine::evacuateQueue()
{
    std::vector<EvacuatedSeq> out;
    out.reserve(static_cast<size_t>(queue_.size()));
    for (const Request &r : queue_.drainAll())
        out.push_back({r, takeResumeState(r)});
    ST_ASSERT(resume_state_.empty(),
              "resume state survived a queue evacuation");
    return out;
}

void
ReplicaEngine::finalize(double makespan_ms)
{
    // completed is maintained incrementally by recordCompletion()
    // — it must not be re-derived from requests.size(), which
    // undercounts whenever record retention is off.
    ServingMetrics &metrics = result_.metrics;
    metrics.in_flight = static_cast<int64_t>(active_.size());
    metrics.makespan_ms = makespan_ms;
    metrics.max_queue_depth = queue_.maxDepth();
    if (!options_.cold_start.plan.empty()) {
        metrics.weight_stream_ms =
            options_.cold_start.plan.streamMs();
        metrics.weight_bytes_streamed =
            options_.cold_start.plan.bytes_total;
    }
    if (paged_) {
        metrics.prefix_hit_pages =
            pool_stats_base_.prefix_hit_pages +
            pool_.stats().prefix_hit_pages;
        metrics.prefix_miss_pages =
            pool_stats_base_.prefix_miss_pages +
            pool_.stats().prefix_miss_pages;
        metrics.peak_pages_active =
            std::max(peak_pages_active_base_,
                     pool_.stats().peak_active_pages);
    }
}

} // namespace serving
} // namespace streamtensor
