#include "serving/scheduler.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** One sequence resident in the batch. */
struct ActiveSeq
{
    Request req;
    int64_t kv_reserved = 0; ///< Reserve admission only
    int64_t generated = 0;

    /** False while the next step must run a prefill-shaped pass:
     *  the first prefill, or the recompute prefill after a
     *  preemption. */
    bool prefilled = false;

    /** True once the first output token was emitted (preemption
     *  clears prefilled but never this). */
    bool ever_prefilled = false;

    double first_token_ms = 0.0;
    int64_t preemptions = 0;

    /** Monotone admission counter; preemption victim order. */
    int64_t admit_tick = 0;
};

/** Progress carried across a preemption, restored on
 *  readmission. The generated tokens themselves are kept (they
 *  are known text); only their KV pages were dropped, so the
 *  readmitted sequence recomputes KV with one prefill-shaped pass
 *  over its full context and continues decoding. */
struct ResumeState
{
    int64_t generated = 0;
    bool ever_prefilled = false;
    double first_token_ms = 0.0;
    int64_t preemptions = 0;
};

/** Context of a sequence's next step: prompt + g - 1 cached
 *  output tokens + the current query token whose KV slot this
 *  step writes (see the convention note in scheduler.h). */
int64_t
stepContext(const ActiveSeq &seq)
{
    return seq.req.input_len + seq.generated;
}

/** Largest context of the request's lifetime — its final decode
 *  step. */
int64_t
maxContext(const Request &r)
{
    return r.input_len + r.output_len - 1;
}

} // namespace

Scheduler::Scheduler(SchedulerOptions options, StepCostModel &cost)
    : options_(std::move(options)), cost_(cost)
{
    ST_CHECK(options_.max_batch >= 1, "need batch room");
    ST_CHECK(options_.kv_budget_tokens >= 1, "need a KV budget");
    ST_CHECK(options_.max_queue_depth >= 0, "queue depth domain");
    ST_CHECK(options_.max_steps >= 1, "step limit domain");
    if (options_.admission == KvAdmission::Paged) {
        ST_CHECK(options_.page_tokens >= 1, "page size domain");
        ST_CHECK(options_.kv_budget_tokens >=
                     options_.page_tokens,
                 "KV budget smaller than one page");
    }
}

ServingResult
Scheduler::run(std::vector<Request> trace)
{
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival_ms < b.arrival_ms ||
                                (a.arrival_ms == b.arrival_ms &&
                                 a.id < b.id);
                     });
    {
        std::set<int64_t> ids;
        for (const auto &r : trace) {
            ST_CHECK(r.input_len >= 1 && r.output_len >= 1,
                     "request lengths must be positive");
            ST_CHECK(r.arrival_ms >= 0.0,
                     "arrivals must be non-negative");
            ST_CHECK(r.prefix_id >= 0 && r.prefix_len >= 0 &&
                         r.prefix_len <= r.input_len &&
                         (r.prefix_id != 0 || r.prefix_len == 0),
                     "malformed shared prefix");
            ST_CHECK(ids.insert(r.id).second,
                     "trace ids must be unique");
        }
    }

    const bool paged = options_.admission == KvAdmission::Paged;
    ServingResult result;
    ServingMetrics &metrics = result.metrics;
    RequestQueue queue(options_.max_queue_depth);
    std::vector<ActiveSeq> active; // admission order
    std::map<int64_t, ResumeState> resume_state;
    int64_t kv_in_use = 0; // Reserve admission only
    int64_t admit_ticks = 0;
    double now = 0.0;
    size_t next_arrival = 0;

    KvPoolOptions pool_options;
    pool_options.page_tokens = options_.page_tokens;
    pool_options.total_pages =
        paged ? options_.kv_budget_tokens / options_.page_tokens
              : 1;
    KvPool pool(pool_options);
    if (paged)
        metrics.pool_pages = pool.totalPages();

    // Reserved KV of a request under Reserve admission: its final
    // bucketed context, held from admission to completion
    // (conservative — no preemption). -1 = can never be served.
    auto reservedKv = [&](const Request &r) -> int64_t {
        if (maxContext(r) > options_.buckets.max_len)
            return -1;
        int64_t reserve =
            models::bucketLen(maxContext(r), options_.buckets);
        return reserve <= options_.kv_budget_tokens ? reserve : -1;
    };

    // A request is servable under Paged admission when its final
    // decode step's shape exists on the bucket ladder and its
    // page demand fits the whole pool (the guarantee that a lone
    // resident sequence can always grow, so preemption
    // terminates).
    auto pagedServable = [&](const Request &r) {
        return maxContext(r) <= options_.buckets.max_len &&
               pool.pagesFor(maxContext(r)) <= pool.totalPages();
    };

    auto ingest = [&](const Request &r) {
        bool servable = paged ? pagedServable(r)
                              : reservedKv(r) >= 0;
        // Arrivals are ingested strictly in (arrival, id) order
        // (the trace is sorted and this is the only producer), so
        // result.rejected inherits that order no matter how many
        // arrivals one ingest round drains.
        if (!servable) {
            ++metrics.rejected_too_long;
            result.rejected.push_back(
                {r.id, r.arrival_ms, RejectReason::TooLong});
        } else if (!queue.push(r)) {
            ++metrics.rejected_queue_full;
            result.rejected.push_back(
                {r.id, r.arrival_ms, RejectReason::QueueFull});
        }
    };

    while (true) {
        // Ingest everything that has arrived by now.
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival_ms <= now)
            ingest(trace[next_arrival++]);

        if (active.empty() && queue.empty()) {
            if (next_arrival == trace.size())
                break; // drained
            now = trace[next_arrival].arrival_ms;
            continue; // idle-jump to the next arrival
        }

        // --- Paged growth: every resident sequence acquires the
        // pages its next step needs. Under pressure, preempt the
        // lowest-priority-class, most-recently-admitted other
        // sequence back to the queue (front of its class) and
        // retry; termination is guaranteed because a lone
        // sequence's demand always fits the pool (pagedServable).
        std::vector<int64_t> preempted_now;
        if (paged && !active.empty()) {
            std::vector<bool> gone(active.size(), false);
            auto preempt = [&](size_t victim) {
                ActiveSeq &seq = active[victim];
                pool.release(seq.req.id);
                ResumeState state;
                state.generated = seq.generated;
                state.ever_prefilled = seq.ever_prefilled;
                state.first_token_ms = seq.first_token_ms;
                state.preemptions = seq.preemptions + 1;
                resume_state[seq.req.id] = state;
                queue.pushFront(seq.req);
                preempted_now.push_back(seq.req.id);
                ++metrics.preemptions;
                gone[victim] = true;
            };
            for (size_t i = 0; i < active.size(); ++i) {
                if (gone[i])
                    continue;
                while (!pool.grow(active[i].req.id,
                                  stepContext(active[i]))) {
                    int victim = -1;
                    for (size_t j = 0; j < active.size(); ++j) {
                        if (j == i || gone[j])
                            continue;
                        if (victim < 0 ||
                            active[j].req.priority >
                                active[victim].req.priority ||
                            (active[j].req.priority ==
                                 active[victim].req.priority &&
                             active[j].admit_tick >
                                 active[victim].admit_tick))
                            victim = static_cast<int>(j);
                    }
                    ST_ASSERT(victim >= 0,
                              "paged growth wedged with no "
                              "preemption victim");
                    preempt(static_cast<size_t>(victim));
                }
            }
            size_t keep = 0;
            for (size_t i = 0; i < active.size(); ++i)
                if (!gone[i])
                    active[keep++] = std::move(active[i]);
            active.resize(keep);
        }

        // --- Admission from the queue head while the batch has
        // room and the head's *current* need (Paged) or final
        // reservation (Reserve) fits. Strictly head-of-line: a
        // blocked head is never jumped by a later request. A
        // sequence preempted this very iteration is not readmitted
        // in the same breath — the pressure that evicted it is
        // still standing.
        while (static_cast<int64_t>(active.size()) <
                   options_.max_batch &&
               !queue.empty()) {
            const Request &head = queue.front();
            if (std::find(preempted_now.begin(),
                          preempted_now.end(),
                          head.id) != preempted_now.end())
                break;
            ActiveSeq seq;
            if (paged) {
                auto rs = resume_state.find(head.id);
                int64_t generated = rs != resume_state.end()
                                        ? rs->second.generated
                                        : 0;
                pool.bind(head.id, head.prefix_id,
                          head.prefix_len);
                if (!pool.grow(head.id,
                               head.input_len + generated)) {
                    pool.release(head.id);
                    break;
                }
                if (rs != resume_state.end()) {
                    seq.generated = rs->second.generated;
                    seq.ever_prefilled =
                        rs->second.ever_prefilled;
                    seq.first_token_ms =
                        rs->second.first_token_ms;
                    seq.preemptions = rs->second.preemptions;
                    resume_state.erase(rs);
                }
            } else {
                int64_t reserve = reservedKv(head);
                ST_ASSERT(reserve >= 0,
                          "unservable request queued");
                if (kv_in_use + reserve >
                    options_.kv_budget_tokens)
                    break;
                seq.kv_reserved = reserve;
                kv_in_use += reserve;
            }
            seq.req = queue.pop();
            seq.admit_tick = admit_ticks++;
            active.push_back(std::move(seq));
        }
        // active is non-empty: when it was empty, the pool (or
        // budget) was entirely free and every queued request's
        // current need fits it by the servability check.
        ST_ASSERT(!active.empty(), "admission stalled");

        // Group the batch by bucketed shapes (map order keeps the
        // group sequence deterministic). An un-prefilled sequence
        // runs a prefill-shaped pass over its full context —
        // input_len for a fresh one, input_len + generated for a
        // readmitted one recomputing its dropped KV.
        std::map<models::BlockShapes, int64_t> shape_counts;
        for (const auto &seq : active) {
            int64_t ctx = stepContext(seq);
            models::BlockShapes shapes =
                seq.prefilled
                    ? models::bucketedDecodeShapes(
                          ctx, options_.buckets)
                    : models::bucketedPrefillShapes(
                          ctx, options_.buckets);
            ++shape_counts[shapes];
        }
        std::vector<runtime::StepGroup> groups;
        groups.reserve(shape_counts.size());
        for (const auto &[shapes, count] : shape_counts)
            groups.push_back({shapes, count});

        double step_ms = cost_.stepMs(groups);
        ST_CHECK(step_ms > 0.0,
                 "cost model must advance simulated time");

        if (options_.record_steps) {
            StepRecord record;
            record.start_ms = now;
            record.step_ms = step_ms;
            for (const auto &seq : active)
                (seq.prefilled ? record.decode_ids
                               : record.prefill_ids)
                    .push_back(seq.req.id);
            record.preempted_ids = preempted_now;
            if (paged) {
                record.kv_reserved =
                    pool.activePages() * pool.pageTokens();
                record.pages_active = pool.activePages();
                record.pages_cached = pool.cachedPages();
                record.pages_free = pool.freePages();
            } else {
                record.kv_reserved = kv_in_use;
            }
            record.queue_depth = queue.size();
            result.steps.push_back(std::move(record));
        }

        now += step_ms;
        metrics.busy_ms += step_ms;
        ++metrics.steps;
        metrics.total_batched_seqs +=
            static_cast<int64_t>(active.size());
        if (paged)
            metrics.page_step_sum += pool.activePages();

        // Token accounting: every step a sequence runs advances
        // it by one output token — the first prefill emits the
        // first token, a recompute prefill emits the next token
        // its preemption interrupted, and each decode emits one
        // more. Finished sequences retire at this step's end,
        // releasing their pages / reservation.
        for (auto &seq : active) {
            if (!seq.prefilled) {
                seq.prefilled = true;
                if (!seq.ever_prefilled) {
                    seq.ever_prefilled = true;
                    seq.first_token_ms = now;
                }
            }
            ++seq.generated;
            if (seq.generated == seq.req.output_len) {
                RequestMetrics done;
                done.id = seq.req.id;
                done.priority = seq.req.priority;
                done.input_len = seq.req.input_len;
                done.output_len = seq.req.output_len;
                done.arrival_ms = seq.req.arrival_ms;
                done.first_token_ms = seq.first_token_ms;
                done.finish_ms = now;
                done.preemptions = seq.preemptions;
                metrics.requests.push_back(done);
                metrics.total_output_tokens += seq.req.output_len;
                if (paged)
                    pool.release(seq.req.id);
                else
                    kv_in_use -= seq.kv_reserved;
            }
        }
        active.erase(
            std::remove_if(active.begin(), active.end(),
                           [](const ActiveSeq &seq) {
                               return seq.generated ==
                                      seq.req.output_len;
                           }),
            active.end());

        if (metrics.steps >= options_.max_steps &&
            !(active.empty() && queue.empty() &&
              next_arrival == trace.size())) {
            result.hit_step_limit = true;
            break;
        }
    }

    metrics.completed =
        static_cast<int64_t>(metrics.requests.size());
    metrics.in_flight = static_cast<int64_t>(active.size());
    metrics.makespan_ms = now;
    metrics.max_queue_depth = queue.maxDepth();
    if (paged) {
        metrics.prefix_hit_pages = pool.stats().prefix_hit_pages;
        metrics.prefix_miss_pages =
            pool.stats().prefix_miss_pages;
        metrics.peak_pages_active =
            pool.stats().peak_active_pages;
    }
    return result;
}

} // namespace serving
} // namespace streamtensor
