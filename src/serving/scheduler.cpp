#include "serving/scheduler.h"

#include <utility>

#include "serving/replica.h"
#include "serving/trace.h"
#include "support/error.h"

namespace streamtensor {
namespace serving {

Scheduler::Scheduler(SchedulerOptions options, StepCostModel &cost)
    : options_(std::move(options)), cost_(cost)
{
    validateSchedulerOptions(options_);
}

ServingResult
Scheduler::run(std::vector<Request> trace)
{
    sortAndValidateTrace(trace);
    ArrivalCursor arrivals(trace);
    return runCursor(arrivals);
}

ServingResult
Scheduler::run(TraceGenerator &trace)
{
    // The generator's stream is already in (arrival, id) order
    // and domain-valid by construction — see trace.h.
    ArrivalCursor arrivals(trace);
    return runCursor(arrivals);
}

ServingResult
Scheduler::runCursor(ArrivalCursor &arrivals)
{
    // The event loop proper lives in ReplicaEngine; this driver
    // owns only the clock, the arrival cursor, and the drain
    // trigger. Loop order (drain check, ingest, deadline sweep,
    // idle-jump, step) is pinned by the replay and golden suites.
    ReplicaEngine engine(options_, cost_);
    double now = 0.0;

    while (true) {
        // Drain activates at the first iteration at or after
        // drain_at_ms, *before* ingest: arrivals at the drain
        // instant are already rejected Drained.
        if (options_.drain_at_ms >= 0.0 && !engine.draining() &&
            now >= options_.drain_at_ms) {
            engine.setDraining(true);
            engine.shedQueueAsDrained(now);
        }

        // Ingest everything that has arrived by now.
        while (!arrivals.exhausted() &&
               arrivals.nextArrivalMs() <= now)
            engine.offer(arrivals.take(), now);

        // Shed queued requests whose deadline has passed before
        // any admission decision sees them.
        engine.expireDeadlines(now);

        if (!engine.hasWork()) {
            if (arrivals.exhausted())
                break; // drained
            now = arrivals.nextArrivalMs();
            continue; // idle-jump to the next arrival
        }

        bool launched = engine.launchStep(now);
        ST_ASSERT(launched,
                  "engine refused a step with work pending");
        now = engine.stepEndMs();
        engine.completeStep();

        if (engine.result().metrics.steps >= options_.max_steps &&
            !(engine.activeCount() == 0 &&
              engine.queueDepth() == 0 &&
              arrivals.exhausted())) {
            engine.result().hit_step_limit = true;
            break;
        }
    }

    engine.finalize(now);
    return std::move(engine.result());
}

} // namespace serving
} // namespace streamtensor
