#include "serving/scheduler.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** One sequence resident in the batch. */
struct ActiveSeq
{
    Request req;
    int64_t kv_reserved = 0;
    int64_t generated = 0;
    bool prefilled = false;
    double first_token_ms = 0.0;
};

} // namespace

Scheduler::Scheduler(SchedulerOptions options, StepCostModel &cost)
    : options_(std::move(options)), cost_(cost)
{
    ST_CHECK(options_.max_batch >= 1, "need batch room");
    ST_CHECK(options_.kv_budget_tokens >= 1, "need a KV budget");
    ST_CHECK(options_.max_queue_depth >= 0, "queue depth domain");
    ST_CHECK(options_.max_steps >= 1, "step limit domain");
}

ServingResult
Scheduler::run(std::vector<Request> trace)
{
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival_ms < b.arrival_ms ||
                                (a.arrival_ms == b.arrival_ms &&
                                 a.id < b.id);
                     });
    {
        std::set<int64_t> ids;
        for (const auto &r : trace) {
            ST_CHECK(r.input_len >= 1 && r.output_len >= 1,
                     "request lengths must be positive");
            ST_CHECK(r.arrival_ms >= 0.0,
                     "arrivals must be non-negative");
            ST_CHECK(ids.insert(r.id).second,
                     "trace ids must be unique");
        }
    }

    ServingResult result;
    ServingMetrics &metrics = result.metrics;
    RequestQueue queue(options_.max_queue_depth);
    std::vector<ActiveSeq> active; // admission order
    int64_t kv_in_use = 0;
    double now = 0.0;
    size_t next_arrival = 0;

    // Reserved KV of a request: its final bucketed context, held
    // from admission to completion (conservative — no preemption).
    // Requests that could never fit are rejected on arrival.
    auto reservedKv = [&](const Request &r) -> int64_t {
        int64_t final_ctx = r.input_len + r.output_len;
        if (final_ctx > options_.buckets.max_len)
            return -1;
        int64_t reserve =
            models::bucketLen(final_ctx, options_.buckets);
        return reserve <= options_.kv_budget_tokens ? reserve : -1;
    };

    auto ingest = [&](const Request &r) {
        if (reservedKv(r) < 0) {
            ++metrics.rejected_too_long;
            result.rejected.push_back({r.id, RejectReason::TooLong});
        } else if (!queue.push(r)) {
            ++metrics.rejected_queue_full;
            result.rejected.push_back(
                {r.id, RejectReason::QueueFull});
        }
    };

    while (true) {
        // Ingest everything that has arrived by now.
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival_ms <= now)
            ingest(trace[next_arrival++]);

        if (active.empty() && queue.empty()) {
            if (next_arrival == trace.size())
                break; // drained
            now = trace[next_arrival].arrival_ms;
            continue; // idle-jump to the next arrival
        }

        // Admit from the queue head while the batch has room and
        // the head's reservation fits. Strictly head-of-line: a
        // blocked head is never jumped by a later request.
        while (static_cast<int64_t>(active.size()) <
                   options_.max_batch &&
               !queue.empty()) {
            int64_t reserve = reservedKv(queue.front());
            ST_ASSERT(reserve >= 0, "unservable request queued");
            if (kv_in_use + reserve > options_.kv_budget_tokens)
                break;
            ActiveSeq seq;
            seq.req = queue.pop();
            seq.kv_reserved = reserve;
            kv_in_use += reserve;
            active.push_back(std::move(seq));
        }
        // active is non-empty: when it was empty, kv_in_use was 0
        // and every queued reservation fits the whole budget.
        ST_ASSERT(!active.empty(), "admission stalled");

        // Group the batch by bucketed shapes (map order keeps the
        // group sequence deterministic).
        std::map<models::BlockShapes, int64_t> shape_counts;
        for (const auto &seq : active) {
            models::BlockShapes shapes =
                seq.prefilled
                    ? models::bucketedDecodeShapes(
                          seq.req.input_len + seq.generated + 1,
                          options_.buckets)
                    : models::bucketedPrefillShapes(
                          seq.req.input_len, options_.buckets);
            ++shape_counts[shapes];
        }
        std::vector<runtime::StepGroup> groups;
        groups.reserve(shape_counts.size());
        for (const auto &[shapes, count] : shape_counts)
            groups.push_back({shapes, count});

        double step_ms = cost_.stepMs(groups);
        ST_CHECK(step_ms > 0.0,
                 "cost model must advance simulated time");

        if (options_.record_steps) {
            StepRecord record;
            record.start_ms = now;
            record.step_ms = step_ms;
            for (const auto &seq : active)
                (seq.prefilled ? record.decode_ids
                               : record.prefill_ids)
                    .push_back(seq.req.id);
            record.kv_reserved = kv_in_use;
            record.queue_depth = queue.size();
            result.steps.push_back(std::move(record));
        }

        now += step_ms;
        metrics.busy_ms += step_ms;
        ++metrics.steps;
        metrics.total_batched_seqs +=
            static_cast<int64_t>(active.size());

        // Token accounting: prefill emits the first output token,
        // each decode step one more. Finished sequences retire at
        // this step's end, releasing their reservation.
        for (auto &seq : active) {
            if (!seq.prefilled) {
                seq.prefilled = true;
                seq.first_token_ms = now;
                seq.generated = 1;
            } else {
                ++seq.generated;
            }
            if (seq.generated == seq.req.output_len) {
                RequestMetrics done;
                done.id = seq.req.id;
                done.priority = seq.req.priority;
                done.input_len = seq.req.input_len;
                done.output_len = seq.req.output_len;
                done.arrival_ms = seq.req.arrival_ms;
                done.first_token_ms = seq.first_token_ms;
                done.finish_ms = now;
                metrics.requests.push_back(done);
                metrics.total_output_tokens += seq.req.output_len;
                kv_in_use -= seq.kv_reserved;
            }
        }
        active.erase(
            std::remove_if(active.begin(), active.end(),
                           [](const ActiveSeq &seq) {
                               return seq.generated ==
                                      seq.req.output_len;
                           }),
            active.end());

        if (metrics.steps >= options_.max_steps &&
            !(active.empty() && queue.empty() &&
              next_arrival == trace.size())) {
            result.hit_step_limit = true;
            break;
        }
    }

    metrics.completed =
        static_cast<int64_t>(metrics.requests.size());
    metrics.makespan_ms = now;
    metrics.max_queue_depth = queue.maxDepth();
    return result;
}

} // namespace serving
} // namespace streamtensor
