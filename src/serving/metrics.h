/**
 * @file
 * Serving metrics: per-request records (arrival, first token,
 * finish) plus aggregates the scheduler accumulates step by step
 * — throughput, TTFT, time-between-tokens, latency percentiles,
 * queue depth, and accelerator utilization. Everything derives
 * from simulated time, so repeated runs aggregate identically.
 */

#ifndef STREAMTENSOR_SERVING_METRICS_H
#define STREAMTENSOR_SERVING_METRICS_H

#include <cstdint>
#include <vector>

#include "serving/request.h"

namespace streamtensor {
namespace serving {

/** Lifecycle timestamps of one completed request. */
struct RequestMetrics
{
    int64_t id = 0;
    int priority = 0;
    int64_t input_len = 0;
    int64_t output_len = 0;
    double arrival_ms = 0.0;

    /** End of the step that ran this request's prefill (the first
     *  output token exists from here). */
    double first_token_ms = 0.0;

    /** End of the step that produced the last output token. */
    double finish_ms = 0.0;

    double ttftMs() const { return first_token_ms - arrival_ms; }
    double latencyMs() const { return finish_ms - arrival_ms; }

    /** Mean gap between output tokens after the first. Zero for
     *  single-token outputs. */
    double tbtMs() const
    {
        return output_len > 1 ? (finish_ms - first_token_ms) /
                                    static_cast<double>(
                                        output_len - 1)
                              : 0.0;
    }
};

/** Nearest-rank percentile (p in [0, 100]) of @p values; 0 when
 *  empty. */
double percentile(std::vector<double> values, double p);

/** Aggregated result of one serving run. */
struct ServingMetrics
{
    std::vector<RequestMetrics> requests; ///< completed, by finish

    int64_t completed = 0;
    int64_t rejected_queue_full = 0;
    int64_t rejected_too_long = 0;
    int64_t total_output_tokens = 0;

    /** Simulated end of the last step (0 for an empty run). */
    double makespan_ms = 0.0;

    /** Simulated time the accelerator spent executing steps. */
    double busy_ms = 0.0;

    int64_t steps = 0;
    int64_t total_batched_seqs = 0; ///< Σ per-step batch size
    int64_t max_queue_depth = 0;

    double requestsPerSecond() const;
    double tokensPerSecond() const;

    /** busy_ms / makespan_ms — fraction of simulated time the
     *  accelerator was executing a step. */
    double utilization() const;

    /** Mean sequences per step. */
    double meanBatchSize() const;

    double ttftMeanMs() const;
    double ttftP95Ms() const;

    /** Token-weighted mean time-between-tokens. */
    double tbtMeanMs() const;

    /** Request latency percentile (nearest rank). */
    double latencyPercentileMs(double p) const;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_METRICS_H
