/**
 * @file
 * Serving metrics: per-request records (arrival, first token,
 * finish) plus aggregates the scheduler accumulates step by step
 * — throughput, TTFT, time-between-tokens, latency percentiles,
 * queue depth, accelerator utilization, and (under paged KV
 * admission) page occupancy, preemption, and prefix-reuse
 * counters. Everything derives from simulated time, so repeated
 * runs aggregate identically.
 *
 * **Record retention.** Historically every completed request left
 * a RequestMetrics record in `requests`, and every percentile
 * query copied and sorted the whole vector — O(n) memory and
 * O(n log n) per query, which is what capped sweeps at ~100k
 * requests. Retention is now governed by MetricsOptions
 * (SchedulerOptions::metrics): records are kept by default up to
 * auto_record_limit completions (so every existing test and its
 * exact percentiles are untouched) and dropped beyond it, at
 * which point the accessors answer from streaming state instead —
 * a deterministic QuantileSketch per latency/TTFT plus running
 * sums — making a 10M-request run O(sketch) memory. The
 * `records_complete` flag says which regime a result is in; exact
 * queries on complete records now sort once into a cache instead
 * of once per query (see percentile()).
 *
 * **Partial-run accounting.** When a run stops at the step limit
 * (`ServingResult::hit_step_limit`), `requests` holds only the
 * sequences that *completed*, while the step-derived aggregates —
 * `steps`, `busy_ms`, `total_batched_seqs`, and therefore
 * `meanBatchSize()` / `utilization()` / `pageUtilization()` —
 * cover every executed step, including work done for the
 * `in_flight` sequences that never finished. The two views are
 * deliberately split rather than reconciled: per-request metrics
 * answer "what did completed requests experience", step metrics
 * answer "what did the accelerator do". On a run that drains
 * normally, `in_flight == 0` and the views agree.
 */

#ifndef STREAMTENSOR_SERVING_METRICS_H
#define STREAMTENSOR_SERVING_METRICS_H

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "serving/quantile_sketch.h"
#include "serving/request.h"

namespace streamtensor {
namespace serving {

/** Per-request record retention policy (SchedulerOptions::
 *  metrics). Streaming aggregates — counters, running sums, and
 *  the quantile sketches — are always maintained; this only
 *  decides whether the full RequestMetrics vector is kept
 *  alongside them. */
struct MetricsOptions
{
    enum class KeepRecords
    {
        /** Keep records up to auto_record_limit completions, then
         *  drop them all and answer from the sketches — small runs
         *  stay exact, million-request sweeps stay bounded. */
        Auto,

        Always, ///< keep every record regardless of run size
        Never,  ///< streaming aggregates only, O(sketch) memory
    };

    KeepRecords keep_records = KeepRecords::Auto;

    /** Completions beyond which Auto drops the record vector. */
    int64_t auto_record_limit = 100000;
};

/** Lifecycle timestamps of one completed request. */
struct RequestMetrics
{
    int64_t id = 0;
    int priority = 0;
    int64_t input_len = 0;
    int64_t output_len = 0;
    double arrival_ms = 0.0;

    /** End of the step that ran this request's prefill (the first
     *  output token exists from here). Preemption does not reset
     *  it: a recompute prefill re-derives KV, not the already
     *  emitted first token. */
    double first_token_ms = 0.0;

    /** End of the step that produced the last output token. */
    double finish_ms = 0.0;

    /** Times the request was preempted back to the queue. */
    int64_t preemptions = 0;

    /** Times the request failed over to another replica after a
     *  crash or drain evacuation (0 outside the fleet tier). */
    int64_t failovers = 0;

    /** Replica the request *finished* on (0 in the single-replica
     *  scheduler). */
    int replica = 0;

    /** Absolute deadline copied from the request (0 = none). */
    double deadline_ms = 0.0;

    /** True when a deadline existed and the request finished past
     *  it (it still completed — resident sequences are never
     *  expired, see Request::deadline_ms). */
    bool missedDeadline() const
    {
        return deadline_ms > 0.0 && finish_ms > deadline_ms;
    }

    double ttftMs() const { return first_token_ms - arrival_ms; }
    double latencyMs() const { return finish_ms - arrival_ms; }

    /** Mean gap between output tokens after the first. Zero for
     *  single-token outputs (which must finish at their first
     *  token — asserted by tbtMeanMs()). */
    double tbtMs() const
    {
        return output_len > 1 ? (finish_ms - first_token_ms) /
                                    static_cast<double>(
                                        output_len - 1)
                              : 0.0;
    }
};

/** Nearest-rank percentile (p in [0, 100]) of @p values.
 *  std::nullopt on an empty sample set — an empty window is not a
 *  percentile of 0.0, and callers that want a sentinel must pick
 *  one explicitly (the ServingMetrics accessors document NaN).
 *
 *  Takes the sample by value and sorts it: O(n log n) per call,
 *  deliberately — it is the one-shot convenience entry point.
 *  Callers querying several percentiles of the same sample sort
 *  once and use percentileOfSorted() (the ServingMetrics
 *  accessors do, via a cached sorted view); callers with millions
 *  of samples should not be holding them at all (QuantileSketch /
 *  MetricsOptions). */
std::optional<double> percentile(std::vector<double> values,
                                 double p);

/** Nearest-rank percentile of an already ascending-sorted sample:
 *  O(1), same convention and empty-set contract as
 *  percentile(). */
std::optional<double>
percentileOfSorted(const std::vector<double> &sorted, double p);

/** Aggregated result of one serving run. */
struct ServingMetrics
{
    /** Completed requests in finish order — complete only while
     *  records_complete (see MetricsOptions); empty or truncated
     *  otherwise, with the streaming fields below standing in. */
    std::vector<RequestMetrics> requests;

    /** True while `requests` holds every completion. Cleared the
     *  moment a record is dropped (KeepRecords::Never, or Auto
     *  crossing its limit — which also discards the records
     *  already accumulated, so the vector is never a misleading
     *  prefix sample). */
    bool records_complete = true;

    int64_t completed = 0;
    int64_t rejected_queue_full = 0;
    int64_t rejected_too_long = 0;

    /** Queued requests shed because their deadline passed
     *  (RejectReason::DeadlineExpired). */
    int64_t expired_deadline = 0;

    /** Requests shed by drain mode — queued at drain entry or
     *  arriving while draining (RejectReason::Drained). */
    int64_t rejected_drained = 0;

    /** Completed requests that finished past a nonzero deadline
     *  (they still count in `completed`). */
    int64_t deadline_misses = 0;

    int64_t total_output_tokens = 0;

    /** Sequences still resident in the batch when the run stopped
     *  — nonzero only on hit_step_limit (see the partial-run
     *  accounting note in the file header). */
    int64_t in_flight = 0;

    /** Simulated end of the last step (0 for an empty run). */
    double makespan_ms = 0.0;

    /** Simulated time the accelerator spent executing steps. */
    double busy_ms = 0.0;

    int64_t steps = 0;
    int64_t total_batched_seqs = 0; ///< Σ per-step batch size
    int64_t max_queue_depth = 0;

    // --- Paged-admission counters (all zero under Reserve). ---

    /** Physical pages of the KV pool (0 under Reserve). */
    int64_t pool_pages = 0;

    /** Sequences preempted back to the queue (a request preempted
     *  twice counts twice). */
    int64_t preemptions = 0;

    /** Prefix-position pages shared instead of allocated, and
     *  first-touch allocated, across the run (KvPoolStats). */
    int64_t prefix_hit_pages = 0;
    int64_t prefix_miss_pages = 0;

    /** High-water mark of active (refcount > 0) pages. */
    int64_t peak_pages_active = 0;

    /** Σ per-step active pages (pageUtilization numerator). */
    int64_t page_step_sum = 0;

    // --- Streaming per-request aggregates, maintained by
    // recordCompletion() for every completion whether or not its
    // record is retained. ---

    /** Request-latency / TTFT distributions (deterministic
     *  streaming sketches; quantile_sketch.h documents the rank
     *  error). The percentile accessors fall back to these when
     *  records_complete is false. */
    QuantileSketch latency_sketch;
    QuantileSketch ttft_sketch;

    /** Running sums backing the mean accessors without records:
     *  Σ ttftMs, Σ (finish − first token), Σ (output_len − 1). */
    double ttft_sum_ms = 0.0;
    double decode_sum_ms = 0.0;
    int64_t decode_gaps = 0;

    // --- Cold-start weight streaming (weights.h). All zero on a
    // warm run; stamped when the scheduler ran with a cold-start
    // plan (SchedulerOptions::cold_start). ---

    /** Simulated storage→HBM window of the cold-start stream. */
    double weight_stream_ms = 0.0;

    /** Artifact bytes the stream moved. */
    int64_t weight_bytes_streamed = 0;

    /** Σ step time added waiting on weight residency (the part of
     *  the stream the compute overlap could not hide). */
    double weight_stall_ms = 0.0;

    /** Fraction of the stream window hidden under compute:
     *  1 − weight_stall_ms / weight_stream_ms, clamped to [0, 1].
     *  1.0 when nothing was streamed. */
    double weightOverlapFraction() const;

    /** Commit one completed request: counters (completed,
     *  total_output_tokens, deadline_misses), the running sums and
     *  sketches above, and — policy permitting — the record
     *  itself. The single entry point for completions, so the
     *  streaming state can never drift from the record vector. */
    void recordCompletion(const RequestMetrics &done,
                          const MetricsOptions &options);

    double requestsPerSecond() const;
    double tokensPerSecond() const;

    /** busy_ms / makespan_ms — fraction of simulated time the
     *  accelerator was executing a step (includes work for
     *  in-flight sequences on a step-limited run). */
    double utilization() const;

    /** Mean sequences per step (includes in-flight work on a
     *  step-limited run). */
    double meanBatchSize() const;

    /** Mean fraction of pool pages active across steps; 0 under
     *  Reserve admission. */
    double pageUtilization() const;

    /** Prefix pages shared over all prefix pages touched; 0 when
     *  the run touched none. */
    double prefixHitRate() const;

    double ttftMeanMs() const;

    /** NaN when no request completed (empty percentile window —
     *  see percentile()). */
    double ttftP95Ms() const;

    /** Token-weighted mean time-between-tokens over completed
     *  requests. Single-token requests contribute no gaps; their
     *  decode window must be empty (finish == first token), which
     *  this asserts rather than silently folding a nonzero window
     *  into the mean. */
    double tbtMeanMs() const;

    /** Request latency percentile (nearest rank). NaN when no
     *  request completed. Exact — O(1) after a one-time
     *  O(n log n) sort cached across queries — while
     *  records_complete; a sketch estimate within the documented
     *  rank error otherwise. The cache keys on
     *  (record revision, requests.size()): recordCompletion bumps
     *  the revision on every completion, so a query followed by
     *  more completions always re-answers from the updated window
     *  — keying on size alone would miss any size-preserving
     *  mutation (regression-tested query-record-query). */
    double latencyPercentileMs(double p) const;

  private:
    /** Monotone mutation counter bumped by every
     *  recordCompletion(); half of the percentile-cache key. */
    int64_t record_revision_ = 0;

    /** Sorted-sample caches behind the exact percentile path,
     *  rebuilt whenever the (revision, size) key moves. */
    mutable std::vector<double> sorted_latencies_;
    mutable std::vector<double> sorted_ttfts_;
    mutable std::pair<int64_t, int64_t> sorted_latencies_key_{-1,
                                                              -1};
    mutable std::pair<int64_t, int64_t> sorted_ttfts_key_{-1, -1};
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_METRICS_H
