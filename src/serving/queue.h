/**
 * @file
 * Bounded multi-class request queue. Strict priority across
 * classes (lower class value first), FIFO within a class, and a
 * global capacity bound: a push beyond capacity is refused so the
 * caller can account the rejection (load shedding at the frontend
 * rather than unbounded queue growth).
 *
 * **Capacity invariant.** Only push() is bounded. pushFront() —
 * the readmission path for preempted or failed-over sequences —
 * is deliberately capacity-exempt: a sequence that already holds
 * progress must never be dropped by its own eviction. The queue
 * therefore enforces, as its own runtime assertion rather than a
 * comment in SchedulerOptions, that any occupancy beyond
 * max_depth is attributable to pushFront() calls: after every
 * insert, size() - max_depth <= cumulative frontInserts().
 *
 * The queue is deliberately oblivious to KV budgets and shapes —
 * admission against accelerator resources is the Scheduler's job.
 */

#ifndef STREAMTENSOR_SERVING_QUEUE_H
#define STREAMTENSOR_SERVING_QUEUE_H

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "serving/request.h"

namespace streamtensor {
namespace serving {

class RequestQueue
{
  public:
    /** @p max_depth bounds the total queued requests across all
     *  classes; 0 means unbounded. */
    explicit RequestQueue(int64_t max_depth = 0)
        : max_depth_(max_depth)
    {}

    /** Enqueue; returns false (and drops the request) when the
     *  queue is at (or, via readmissions, beyond) capacity. */
    bool push(const Request &request);

    /** Re-enqueue at the *front* of the request's priority class.
     *  Used for preempted (and failed-over) sequences going back
     *  to the queue: such a request was popped before everything
     *  still queued in its class, so front insertion restores
     *  exact (arrival, id) order within the class. Exempt from the
     *  capacity bound — a readmitted request must never be
     *  dropped. */
    void pushFront(const Request &request);

    /** True when no request is queued. */
    bool empty() const { return size_ == 0; }

    /** Total queued requests. */
    int64_t size() const { return size_; }

    /** High-water mark of size() since construction. */
    int64_t maxDepth() const { return max_depth_seen_; }

    /** Sum of queued requests' input_len: the KV prefill demand
     *  waiting in this queue. Load-balancing signal — resident KV
     *  alone is blind to backlog, so a replica whose batch happens
     *  to hold small contexts would otherwise attract every
     *  arrival while its queue grows without bound. Maintained
     *  incrementally (O(1)): the fleet balancer reads it on every
     *  pick, which at sweep scale used to be an O(queue) walk per
     *  arrival. */
    int64_t queuedInputTokens() const
    {
        return queued_input_tokens_;
    }

    /** Cumulative pushFront() calls — the only inserts allowed to
     *  exceed a nonzero capacity (see the invariant above). */
    int64_t frontInserts() const { return front_inserts_; }

    /** The request that pop() would return. Queue must be
     *  non-empty. */
    const Request &front() const;

    /** Dequeue the highest-priority class's oldest request. */
    Request pop();

    /** Remove every queued request whose deadline has passed
     *  (deadline_ms in (0, now]) and return them in pop order
     *  (priority class, then FIFO) — the overload-shedding sweep.
     *  Requests without a deadline are untouched. O(1) when no
     *  queued request carries a deadline (the common sweep, run
     *  every event-loop round); O(queue) otherwise. */
    std::vector<Request> expireBefore(double now_ms);

    /** Dequeue everything in pop order (crash evacuation, drain
     *  flush). Leaves the queue empty. */
    std::vector<Request> drainAll();

    /** Copy of every queued request in pop order, without
     *  mutating the queue. O(queue) — test/diagnostic hook; the
     *  property suite recomputes queuedInputTokens() from it to
     *  pin the O(1) counter against every mutation path. */
    std::vector<Request> snapshot() const;

  private:
    /** Panic unless any occupancy beyond capacity is covered by
     *  cumulative readmissions. */
    void assertCapacityInvariant() const;

    int64_t max_depth_;
    int64_t size_ = 0;
    int64_t max_depth_seen_ = 0;
    int64_t front_inserts_ = 0;
    int64_t queued_input_tokens_ = 0;

    /** Queued requests with a nonzero deadline — the
     *  expireBefore() early-out. */
    int64_t deadlined_ = 0;

    /** Per-class FIFO; map order = class priority order. */
    std::map<int, std::deque<Request>> classes_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_QUEUE_H
