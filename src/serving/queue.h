/**
 * @file
 * Bounded multi-class request queue. Strict priority across
 * classes (lower class value first), FIFO within a class, and a
 * global capacity bound: a push beyond capacity is refused so the
 * caller can account the rejection (load shedding at the frontend
 * rather than unbounded queue growth).
 *
 * The queue is deliberately oblivious to KV budgets and shapes —
 * admission against accelerator resources is the Scheduler's job.
 */

#ifndef STREAMTENSOR_SERVING_QUEUE_H
#define STREAMTENSOR_SERVING_QUEUE_H

#include <cstdint>
#include <deque>
#include <map>

#include "serving/request.h"

namespace streamtensor {
namespace serving {

class RequestQueue
{
  public:
    /** @p max_depth bounds the total queued requests across all
     *  classes; 0 means unbounded. */
    explicit RequestQueue(int64_t max_depth = 0)
        : max_depth_(max_depth)
    {}

    /** Enqueue; returns false (and drops the request) when the
     *  queue is at capacity. */
    bool push(const Request &request);

    /** Re-enqueue at the *front* of the request's priority class.
     *  Used for preempted sequences going back to the queue: a
     *  preempted request was popped before everything still queued
     *  in its class, so front insertion restores exact
     *  (arrival, id) order within the class. Exempt from the
     *  capacity bound — a preempted request must never be
     *  dropped. */
    void pushFront(const Request &request);

    /** True when no request is queued. */
    bool empty() const { return size_ == 0; }

    /** Total queued requests. */
    int64_t size() const { return size_; }

    /** High-water mark of size() since construction. */
    int64_t maxDepth() const { return max_depth_seen_; }

    /** The request that pop() would return. Queue must be
     *  non-empty. */
    const Request &front() const;

    /** Dequeue the highest-priority class's oldest request. */
    Request pop();

  private:
    int64_t max_depth_;
    int64_t size_ = 0;
    int64_t max_depth_seen_ = 0;

    /** Per-class FIFO; map order = class priority order. */
    std::map<int, std::deque<Request>> classes_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_QUEUE_H
