/**
 * @file
 * Fault-tolerant replicated serving: N ReplicaEngine instances
 * (each with its own paged KV pool and resident batch) behind a
 * pluggable LoadBalancer, driven on one simulated clock by a
 * FaultInjector. The fleet-level counterpart of the single-replica
 * Scheduler.
 *
 * **Event loop.** The fleet advances simulated time to the next
 * event and processes everything due in a fixed category order —
 * the ordering at equal instants is part of the determinism
 * contract (bit-identical reruns, pinned by the fault property
 * suite):
 *
 *   1. step completions, in replica-id order (a step that ends
 *      exactly when its replica crashes *completes*: the tokens
 *      were produced before the failure);
 *   2. fault events, in plan firing order;
 *   3. arrivals, in (arrival, id) order, routed by the balancer;
 *   4. deadline expiry sweeps (per-replica queues in id order,
 *      then the fleet's own retry buffer);
 *   5. due retries, oldest (ready, id) first;
 *   6. step launches on every idle up replica, in id order.
 *
 * **Event cores.** Two interchangeable implementations pick the
 * next instant (FleetOptions::event_core); both then run the same
 * six phases, so their results are bit-identical — pinned pairwise
 * by the differential suite over the 100-seed fault scenarios.
 * LegacyScan re-derives the minimum by scanning every engine, the
 * whole retry buffer, and the arrival cursor each round: O(n) per
 * round, fine at hundreds of requests, the bottleneck at millions.
 * Heap (the default) keeps a min-heap of typed events —
 * completion, fault, arrival, retry-due, retry-deadline — ordered
 * by (time, category, replica/request id) with the category order
 * above encoded in the comparator, and invalidates stale entries
 * lazily (a completion event carries its launch generation; retry
 * and deadline events are checked against the buffer): O(log n)
 * per event. Per-round work that scans the *fleet* (completions
 * due, launches, step totals) stays linear in num_replicas — a
 * small fixed constant, not trace length. Queued-request deadline
 * expiry is lazy in both cores: a queued request expires at the
 * next round at or after its deadline (stamped at that round's
 * instant), and its deadline alone never wakes the loop — only
 * retry-buffer deadlines do.
 *
 * **Failover.** A crash evacuates the replica's resident and
 * queued requests with their ResumeState (tokens already emitted
 * are kept — only KV is lost). Each evacuated request consumes one
 * retry attempt and re-enters the fleet's retry buffer with
 * exponential backoff in simulated time
 * (retry_backoff_ms × retry_backoff_factor^(attempt-1), the
 * frontend's re-dispatch cost); a request whose attempts exceed
 * max_retries is recorded lost. At its ready instant the balancer
 * routes it to a surviving replica, where it readmits through the
 * preemption-readmission path: one recompute prefill over
 * input_len + generated context, then decoding continues — a
 * completed request emits exactly output_len tokens no matter how
 * many replicas it visited. While no replica is eligible the
 * buffer simply holds (graceful degradation to zero capacity);
 * requests still there when no future event can revive a replica
 * are lost, and queued deadlines keep expiring throughout.
 *
 * **Drain** hands the replica's queue back to the fleet for
 * immediate re-routing — no attempt is consumed and no backoff
 * applies, because no work was lost. **Slowdown** multiplies the
 * replica's step cost; **degradation** swaps its cost oracle for
 * the degraded model the fleet was constructed with (e.g. one
 * compiled against inflated inter-die link latency). **Recovery**
 * returns a crashed replica to service with fresh, empty state.
 */

#ifndef STREAMTENSOR_SERVING_FLEET_H
#define STREAMTENSOR_SERVING_FLEET_H

#include <cstdint>
#include <utility>
#include <vector>

#include "serving/fault.h"
#include "serving/load_balancer.h"
#include "serving/replica.h"
#include "serving/scheduler.h"

namespace streamtensor {
namespace serving {

/** Next-event selection strategy (see the event-cores note in the
 *  file header). Results are bit-identical between the two;
 *  LegacyScan survives as the differential oracle the heap core
 *  is tested against. */
enum class FleetEventCore
{
    Heap,       ///< O(log n) typed-event min-heap (default)
    LegacyScan, ///< O(n)-per-round scans (oracle)
};

/** Fleet knobs. */
struct FleetOptions
{
    int num_replicas = 2;

    /** Per-replica scheduler configuration, shared by every
     *  replica (homogeneous fleet). replica.max_steps bounds the
     *  *total* steps across the fleet. replica.drain_at_ms is
     *  ignored — draining is a FaultPlan event here. */
    SchedulerOptions replica;

    LbPolicy balancer = LbPolicy::LeastKvLoad;

    /** Failover attempts a request may consume before it is
     *  recorded lost (first dispatch is free; every crash
     *  evacuation costs one). */
    int64_t max_retries = 3;

    /** Base re-dispatch delay after a crash evacuation. */
    double retry_backoff_ms = 5.0;

    /** Exponential backoff growth per consumed attempt. */
    double retry_backoff_factor = 2.0;

    /** The fault schedule to execute. */
    FaultPlan faults;

    /** Simulated weight-reload window charged to crash recovery:
     *  a Recover event starts the replica re-streaming its
     *  weights from storage, and it takes work again only this
     *  many ms later (derive it from a storage tier via
     *  WeightStreamPlan::streamMs(), or pin any constant). 0
     *  keeps the pre-streaming instant recovery, bit-identically.
     *  Reload time counts as down time (uptimeFraction) and is
     *  tallied in FleetMetrics::reload_ms_total. */
    double recovery_reload_ms = 0.0;

    /** Reload window charged by FaultKind::Swap (hot model swap).
     *  Negative = use recovery_reload_ms. */
    double swap_reload_ms = -1.0;

    /** Next-event selection core. */
    FleetEventCore event_core = FleetEventCore::Heap;

    /** Worker threads for replica stepping (Heap core only;
     *  LegacyScan stays serial as the oracle). At >= 2, step
     *  completions due at one instant always fan out across a
     *  support::ThreadPool, and step *launches* fan out when the
     *  cost model (and the degraded model, if any) reports
     *  concurrentSafe() — both touch only engine-local state
     *  between the fleet's interaction points, and completion
     *  events are committed serially in replica-id order after
     *  the barrier, so results are bit-identical with 1 or N
     *  threads (pinned by the differential suite). */
    int64_t step_threads = 1;
};

/** A request that exhausted its retry budget (or was stranded
 *  with no revivable replica). */
struct LostRequest
{
    int64_t id = 0;

    /** Instant the loss was decided. */
    double at_ms = 0.0;

    /** Failover attempts consumed when it was given up. */
    int64_t attempts = 0;
};

/** Fleet-wide aggregates. Per-request metrics from all replicas
 *  are merged in (finish, id) order, so "degraded p99" is a
 *  single-fleet percentile. */
struct FleetMetrics
{
    /** Merged per-request records, by (finish, id) — complete only
     *  while records_complete; see MetricsOptions (the fleet
     *  inherits each replica's retention policy). */
    std::vector<RequestMetrics> requests;

    /** Every replica kept all its records (so `requests` is the
     *  full fleet history). */
    bool records_complete = true;

    /** Fleet-wide latency distribution: the replicas' streaming
     *  sketches merged in replica-id order (deterministic), always
     *  maintained. Percentile queries route here when records are
     *  incomplete. */
    QuantileSketch latency_sketch;

    int64_t completed = 0;
    int64_t rejected_queue_full = 0;
    int64_t rejected_too_long = 0;
    int64_t expired_deadline = 0;
    int64_t rejected_drained = 0;
    int64_t deadline_misses = 0;

    /** Requests that exhausted max_retries or were stranded. */
    int64_t requests_lost = 0;

    /** Crash evacuations of individual requests (a request that
     *  survives two crashes counts twice). */
    int64_t failovers = 0;

    int64_t crashes = 0;
    int64_t recoveries = 0;
    int64_t drains = 0;
    int64_t degrades = 0;

    /** Hot model swaps applied (FaultKind::Swap on an up
     *  replica). */
    int64_t swaps = 0;

    /** Weight-reload windows charged (recoveries with a nonzero
     *  reload window, plus every swap), and their summed
     *  simulated duration. */
    int64_t reloads = 0;
    double reload_ms_total = 0.0;

    /** Σ per-replica cold-start weight stall
     *  (ServingMetrics::weight_stall_ms) across the fleet. */
    double weight_stall_ms = 0.0;

    /** SlowStart windows applied (every SlowStart event on any
     *  replica, up or down). */
    int64_t slowdowns = 0;

    /** In-flight steps abandoned by crashes: simulated work that
     *  was paid for and produced nothing. */
    int64_t aborted_steps = 0;

    int64_t preemptions = 0;
    int64_t total_output_tokens = 0;
    int64_t steps = 0; ///< committed across the fleet

    double makespan_ms = 0.0;

    /** Simulated up-time per replica (id-indexed). */
    std::vector<double> replica_up_ms;

    /** Completed over every request the fleet *accepted and then
     *  failed*: completed / (completed + lost + expired). Load
     *  shedding (TooLong / QueueFull / Drained) is a refusal, not
     *  an availability failure, and is excluded. 1.0 for an empty
     *  window. */
    double availability() const;

    /** Σ replica up-time over num_replicas × makespan (1.0 when
     *  makespan is zero). */
    double uptimeFraction() const;

    double servedRequestsPerSecond() const;

    /** Monotone mutation counter for `requests`: the fleet bumps
     *  it whenever it appends or reorders records (the
     *  finalize-time merge); code mutating `requests` from
     *  outside should too. Half of the percentile-cache key —
     *  see latencyPercentileMs(). */
    int64_t record_revision = 0;

    /** Fleet-wide latency percentile (nearest rank); NaN when no
     *  request completed. Exact (sorted once, cached across
     *  queries) while records_complete; a sketch estimate within
     *  the documented rank error (quantile_sketch.h) otherwise.
     *  The cache keys on (record_revision, requests.size()), so a
     *  query before a later merge — the fleet merge path — always
     *  re-answers from the updated window. */
    double latencyPercentileMs(double p) const;

  private:
    mutable std::vector<double> sorted_latencies_;
    mutable std::pair<int64_t, int64_t> sorted_latencies_key_{-1,
                                                              -1};
};

/** Outcome of one fleet run. */
struct FleetResult
{
    FleetMetrics metrics;

    /** Per-replica finalized results, id-indexed (step records,
     *  per-replica metrics; makespan stamped fleet-wide). */
    std::vector<ServingResult> replicas;

    /** All rejections — fleet-level and per-replica — merged in
     *  (at_ms, id) order. */
    std::vector<RejectedRequest> rejected;

    std::vector<LostRequest> lost; ///< in decision order

    /** replica.max_steps total steps were executed with work
     *  still pending. */
    bool hit_step_limit = false;
};

class FleetScheduler
{
  public:
    /** @p cost is the nominal step-cost oracle shared by every
     *  replica; @p degraded_cost, when non-null, is the oracle
     *  used while a replica is under DegradeStart (both must
     *  outlive the scheduler). A shared stateful ExecutorCostModel
     *  is fine: replica steps are costed one at a time on one
     *  simulated clock, never concurrently. */
    FleetScheduler(FleetOptions options, StepCostModel &cost,
                   StepCostModel *degraded_cost = nullptr);

    const FleetOptions &options() const { return options_; }

    /** Serve @p trace to completion (or step limit) under the
     *  fault plan. Deterministic: identical inputs give
     *  bit-identical results. */
    FleetResult run(std::vector<Request> trace);

    /** Serve a lazy trace without materializing it — bit-identical
     *  to run(vector-of-the-same-generator) but O(1) trace memory
     *  (the million-request sweep entry point). The generator's
     *  stream is sorted and valid by construction (trace.h). */
    FleetResult run(TraceGenerator &trace);

  private:
    FleetResult runCursor(ArrivalCursor &arrivals);

    FleetOptions options_;
    StepCostModel &cost_;
    StepCostModel *degraded_cost_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_FLEET_H
