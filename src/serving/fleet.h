/**
 * @file
 * Fault-tolerant replicated serving: N ReplicaEngine instances
 * (each with its own paged KV pool and resident batch) behind a
 * pluggable LoadBalancer, driven on one simulated clock by a
 * FaultInjector. The fleet-level counterpart of the single-replica
 * Scheduler.
 *
 * **Event loop.** The fleet advances simulated time to the next
 * event and processes everything due in a fixed category order —
 * the ordering at equal instants is part of the determinism
 * contract (bit-identical reruns, pinned by the fault property
 * suite):
 *
 *   1. step completions, in replica-id order (a step that ends
 *      exactly when its replica crashes *completes*: the tokens
 *      were produced before the failure);
 *   2. fault events, in plan firing order;
 *   3. arrivals, in (arrival, id) order, routed by the balancer;
 *   4. deadline expiry sweeps (per-replica queues in id order,
 *      then the fleet's own retry buffer);
 *   5. due retries, oldest (ready, id) first;
 *   6. step launches on every idle up replica, in id order.
 *
 * **Failover.** A crash evacuates the replica's resident and
 * queued requests with their ResumeState (tokens already emitted
 * are kept — only KV is lost). Each evacuated request consumes one
 * retry attempt and re-enters the fleet's retry buffer with
 * exponential backoff in simulated time
 * (retry_backoff_ms × retry_backoff_factor^(attempt-1), the
 * frontend's re-dispatch cost); a request whose attempts exceed
 * max_retries is recorded lost. At its ready instant the balancer
 * routes it to a surviving replica, where it readmits through the
 * preemption-readmission path: one recompute prefill over
 * input_len + generated context, then decoding continues — a
 * completed request emits exactly output_len tokens no matter how
 * many replicas it visited. While no replica is eligible the
 * buffer simply holds (graceful degradation to zero capacity);
 * requests still there when no future event can revive a replica
 * are lost, and queued deadlines keep expiring throughout.
 *
 * **Drain** hands the replica's queue back to the fleet for
 * immediate re-routing — no attempt is consumed and no backoff
 * applies, because no work was lost. **Slowdown** multiplies the
 * replica's step cost; **degradation** swaps its cost oracle for
 * the degraded model the fleet was constructed with (e.g. one
 * compiled against inflated inter-die link latency). **Recovery**
 * returns a crashed replica to service with fresh, empty state.
 */

#ifndef STREAMTENSOR_SERVING_FLEET_H
#define STREAMTENSOR_SERVING_FLEET_H

#include <cstdint>
#include <vector>

#include "serving/fault.h"
#include "serving/load_balancer.h"
#include "serving/replica.h"
#include "serving/scheduler.h"

namespace streamtensor {
namespace serving {

/** Fleet knobs. */
struct FleetOptions
{
    int num_replicas = 2;

    /** Per-replica scheduler configuration, shared by every
     *  replica (homogeneous fleet). replica.max_steps bounds the
     *  *total* steps across the fleet. replica.drain_at_ms is
     *  ignored — draining is a FaultPlan event here. */
    SchedulerOptions replica;

    LbPolicy balancer = LbPolicy::LeastKvLoad;

    /** Failover attempts a request may consume before it is
     *  recorded lost (first dispatch is free; every crash
     *  evacuation costs one). */
    int64_t max_retries = 3;

    /** Base re-dispatch delay after a crash evacuation. */
    double retry_backoff_ms = 5.0;

    /** Exponential backoff growth per consumed attempt. */
    double retry_backoff_factor = 2.0;

    /** The fault schedule to execute. */
    FaultPlan faults;
};

/** A request that exhausted its retry budget (or was stranded
 *  with no revivable replica). */
struct LostRequest
{
    int64_t id = 0;

    /** Instant the loss was decided. */
    double at_ms = 0.0;

    /** Failover attempts consumed when it was given up. */
    int64_t attempts = 0;
};

/** Fleet-wide aggregates. Per-request metrics from all replicas
 *  are merged in (finish, id) order, so "degraded p99" is a
 *  single-fleet percentile. */
struct FleetMetrics
{
    std::vector<RequestMetrics> requests; ///< merged, by finish

    int64_t completed = 0;
    int64_t rejected_queue_full = 0;
    int64_t rejected_too_long = 0;
    int64_t expired_deadline = 0;
    int64_t rejected_drained = 0;
    int64_t deadline_misses = 0;

    /** Requests that exhausted max_retries or were stranded. */
    int64_t requests_lost = 0;

    /** Crash evacuations of individual requests (a request that
     *  survives two crashes counts twice). */
    int64_t failovers = 0;

    int64_t crashes = 0;
    int64_t recoveries = 0;
    int64_t drains = 0;
    int64_t degrades = 0;

    /** SlowStart windows applied (every SlowStart event on any
     *  replica, up or down). */
    int64_t slowdowns = 0;

    /** In-flight steps abandoned by crashes: simulated work that
     *  was paid for and produced nothing. */
    int64_t aborted_steps = 0;

    int64_t preemptions = 0;
    int64_t total_output_tokens = 0;
    int64_t steps = 0; ///< committed across the fleet

    double makespan_ms = 0.0;

    /** Simulated up-time per replica (id-indexed). */
    std::vector<double> replica_up_ms;

    /** Completed over every request the fleet *accepted and then
     *  failed*: completed / (completed + lost + expired). Load
     *  shedding (TooLong / QueueFull / Drained) is a refusal, not
     *  an availability failure, and is excluded. 1.0 for an empty
     *  window. */
    double availability() const;

    /** Σ replica up-time over num_replicas × makespan (1.0 when
     *  makespan is zero). */
    double uptimeFraction() const;

    double servedRequestsPerSecond() const;

    /** Fleet-wide latency percentile (nearest rank); NaN when no
     *  request completed. */
    double latencyPercentileMs(double p) const;
};

/** Outcome of one fleet run. */
struct FleetResult
{
    FleetMetrics metrics;

    /** Per-replica finalized results, id-indexed (step records,
     *  per-replica metrics; makespan stamped fleet-wide). */
    std::vector<ServingResult> replicas;

    /** All rejections — fleet-level and per-replica — merged in
     *  (at_ms, id) order. */
    std::vector<RejectedRequest> rejected;

    std::vector<LostRequest> lost; ///< in decision order

    /** replica.max_steps total steps were executed with work
     *  still pending. */
    bool hit_step_limit = false;
};

class FleetScheduler
{
  public:
    /** @p cost is the nominal step-cost oracle shared by every
     *  replica; @p degraded_cost, when non-null, is the oracle
     *  used while a replica is under DegradeStart (both must
     *  outlive the scheduler). A shared stateful ExecutorCostModel
     *  is fine: replica steps are costed one at a time on one
     *  simulated clock, never concurrently. */
    FleetScheduler(FleetOptions options, StepCostModel &cost,
                   StepCostModel *degraded_cost = nullptr);

    const FleetOptions &options() const { return options_; }

    /** Serve @p trace to completion (or step limit) under the
     *  fault plan. Deterministic: identical inputs give
     *  bit-identical results. */
    FleetResult run(std::vector<Request> trace);

  private:
    FleetOptions options_;
    StepCostModel &cost_;
    StepCostModel *degraded_cost_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_FLEET_H
