/**
 * @file
 * Pluggable request routing for the replicated serving tier. A
 * LoadBalancer sees only a per-replica status snapshot (up,
 * draining, queue depth, resident count, KV occupancy) and picks
 * the replica a request is dispatched to. Down and draining
 * replicas are never eligible.
 *
 * Three policies:
 *  - RoundRobin: rotate over eligible replicas — the baseline that
 *    ignores load entirely.
 *  - LeastKvLoad: the eligible replica holding the fewest KV
 *    tokens (ties: shallower queue, then lower id) — balances the
 *    resource that actually gates admission.
 *  - PrefixAffinity: requests naming a shared prefix hash to a
 *    stable eligible replica so its paged pool keeps one hot copy
 *    of the prefix pages (failover rehashes over the survivors);
 *    prefix-less requests fall back to LeastKvLoad.
 *
 * Policies are deterministic functions of (request, snapshot) plus
 * their own internal cursor state — no randomness, no wall clock —
 * so fleet runs replay bit-identically.
 */

#ifndef STREAMTENSOR_SERVING_LOAD_BALANCER_H
#define STREAMTENSOR_SERVING_LOAD_BALANCER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "serving/request.h"

namespace streamtensor {
namespace serving {

/** Point-in-time view of one replica, as much as a frontend
 *  router could observe. */
struct ReplicaStatus
{
    int id = 0;
    bool up = true;
    bool draining = false;
    int64_t queue_depth = 0;
    int64_t active_seqs = 0;

    /** KV tokens currently held (active pages × page_tokens under
     *  Paged admission; reserved tokens under Reserve) plus the
     *  queued requests' prefill demand — commitment and backlog in
     *  one signal. */
    int64_t kv_load_tokens = 0;

    bool eligible() const { return up && !draining; }
};

/** Routing policy selector (FleetOptions knob). */
enum class LbPolicy
{
    RoundRobin,
    LeastKvLoad,
    PrefixAffinity,
};

/** Stable lower-case name (bench labels, logs). */
const char *lbPolicyName(LbPolicy policy);

class LoadBalancer
{
  public:
    virtual ~LoadBalancer() = default;

    /** Replica id to dispatch @p r to, or -1 when no replica is
     *  eligible. Must be deterministic in (r, replicas) and the
     *  balancer's own state. */
    virtual int pick(const Request &r,
                     const std::vector<ReplicaStatus> &replicas)
        = 0;
};

std::unique_ptr<LoadBalancer> makeLoadBalancer(LbPolicy policy);

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_LOAD_BALANCER_H
