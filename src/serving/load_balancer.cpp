#include "serving/load_balancer.h"

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** Indices of eligible replicas, in id order. */
std::vector<size_t>
eligibleIndices(const std::vector<ReplicaStatus> &replicas)
{
    std::vector<size_t> out;
    for (size_t i = 0; i < replicas.size(); ++i)
        if (replicas[i].eligible())
            out.push_back(i);
    return out;
}

/** Least KV load, ties broken by queue depth then id — shared by
 *  LeastKvLoad and PrefixAffinity's fallback. */
int
pickLeastLoaded(const std::vector<ReplicaStatus> &replicas)
{
    int best = -1;
    for (const auto &s : replicas) {
        if (!s.eligible())
            continue;
        if (best < 0)
            best = s.id;
        const ReplicaStatus &b =
            replicas[static_cast<size_t>(best)];
        if (s.kv_load_tokens < b.kv_load_tokens ||
            (s.kv_load_tokens == b.kv_load_tokens &&
             s.queue_depth < b.queue_depth))
            best = s.id;
    }
    return best;
}

/** SplitMix64 finalizer — a portable, well-mixed stand-in for
 *  hashing the prefix content. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

class RoundRobinBalancer final : public LoadBalancer
{
  public:
    int pick(const Request &,
             const std::vector<ReplicaStatus> &replicas) override
    {
        auto eligible = eligibleIndices(replicas);
        if (eligible.empty())
            return -1;
        // The cursor rotates over *positions in the eligible
        // list*, so membership changes (crash, drain, recovery)
        // just re-wrap instead of skewing toward low ids.
        int id = replicas[eligible[cursor_ % eligible.size()]].id;
        ++cursor_;
        return id;
    }

  private:
    size_t cursor_ = 0;
};

class LeastKvLoadBalancer final : public LoadBalancer
{
  public:
    int pick(const Request &,
             const std::vector<ReplicaStatus> &replicas) override
    {
        return pickLeastLoaded(replicas);
    }
};

class PrefixAffinityBalancer final : public LoadBalancer
{
  public:
    int pick(const Request &r,
             const std::vector<ReplicaStatus> &replicas) override
    {
        if (r.prefix_id == 0)
            return pickLeastLoaded(replicas);
        auto eligible = eligibleIndices(replicas);
        if (eligible.empty())
            return -1;
        // Hash over the *current* eligible set: when the home
        // replica dies, the prefix group rehashes as one onto a
        // survivor and rebuilds its shared pages exactly once.
        uint64_t h = mix64(static_cast<uint64_t>(r.prefix_id));
        return replicas[eligible[h % eligible.size()]].id;
    }
};

} // namespace

const char *
lbPolicyName(LbPolicy policy)
{
    switch (policy) {
    case LbPolicy::RoundRobin:
        return "round_robin";
    case LbPolicy::LeastKvLoad:
        return "least_kv_load";
    case LbPolicy::PrefixAffinity:
        return "prefix_affinity";
    }
    ST_PANIC("unknown load-balancer policy");
}

std::unique_ptr<LoadBalancer>
makeLoadBalancer(LbPolicy policy)
{
    switch (policy) {
    case LbPolicy::RoundRobin:
        return std::make_unique<RoundRobinBalancer>();
    case LbPolicy::LeastKvLoad:
        return std::make_unique<LeastKvLoadBalancer>();
    case LbPolicy::PrefixAffinity:
        return std::make_unique<PrefixAffinityBalancer>();
    }
    ST_PANIC("unknown load-balancer policy");
}

} // namespace serving
} // namespace streamtensor
