/**
 * @file
 * Seeded arrival-trace generators for the serving simulator:
 * Poisson (open-loop steady traffic), bursty (on/off modulated
 * Poisson — the "heavy traffic" shape real frontends see), and
 * replay (hand-written or captured traces).
 *
 * Distribution transforms are hand-rolled on top of
 * std::mt19937_64 (whose output is specified bit-exactly by the
 * standard) instead of <random> distributions (whose mapping is
 * implementation-defined), so every platform generates the
 * identical trace for a given seed — a precondition for the
 * deterministic replay suite.
 *
 * **Generator determinism.** TraceGenerator is the pull-iterator
 * form of the same processes: poissonTrace()/burstyTrace() are
 * now literally take-all loops over it, so for a given
 * (shape, options) the generator's request stream is bit-identical
 * to the materialized vector, element for element — pinned by the
 * differential suite. Million-request sweeps feed the scheduler
 * from the generator directly and never hold the trace in memory;
 * both forms draw from one seeded mt19937_64 in one fixed order,
 * so mixing them (e.g. validating a generator run against a
 * vector run) compares identical streams.
 */

#ifndef STREAMTENSOR_SERVING_TRACE_H
#define STREAMTENSOR_SERVING_TRACE_H

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "serving/request.h"

namespace streamtensor {
namespace serving {

/** Knobs shared by the trace generators. */
struct TraceOptions
{
    int64_t num_requests = 64;
    uint64_t seed = 1;

    /** Mean inter-arrival gap of the base Poisson process. */
    double mean_interarrival_ms = 50.0;

    /** Request length ranges (uniform, inclusive). */
    int64_t min_input_len = 8;
    int64_t max_input_len = 96;
    int64_t min_output_len = 4;
    int64_t max_output_len = 48;

    /** Priority classes drawn uniformly from [0, num_priorities). */
    int num_priorities = 1;

    /** Shared system-prompt modeling: when num_prefix_groups > 0,
     *  each request draws a prefix group uniformly and its prompt
     *  becomes shared_prefix_len common leading tokens (identical
     *  across the group — one physical copy under paged KV) plus
     *  its drawn input length. 0 disables and leaves traces
     *  bit-identical to pre-prefix generators. */
    int64_t num_prefix_groups = 0;
    int64_t shared_prefix_len = 0;

    /** Deadline modeling: when positive, every request gets
     *  deadline_ms = arrival_ms + deadline_slack_ms. Deterministic
     *  (no RNG draw), so enabling it never perturbs the other
     *  drawn fields and the default (0 = no deadlines) leaves
     *  traces bit-identical to older generators. */
    double deadline_slack_ms = 0.0;

    /** Bursty modulation: the arrival rate alternates between a
     *  burst phase (gap / burst_factor) lasting
     *  burst_duty * burst_period_ms and a quiet phase. Used by
     *  burstyTrace only. */
    double burst_period_ms = 2000.0;
    double burst_duty = 0.25;
    double burst_factor = 8.0;
};

/** Open-loop Poisson arrivals: exponential inter-arrival gaps at
 *  the mean rate, uniform lengths and priorities. Sorted by
 *  arrival time; ids are 0..n-1 in arrival order. */
std::vector<Request> poissonTrace(const TraceOptions &options);

/** On/off bursty arrivals: Poisson whose rate is multiplied by
 *  burst_factor inside periodic burst windows. Stresses queue
 *  growth and tail latency. */
std::vector<Request> burstyTrace(const TraceOptions &options);

/** The arrival process behind a TraceGenerator. */
enum class TraceShape
{
    Poisson,
    Bursty,
};

/** Lazy pull-iterator over a seeded arrival process. Yields the
 *  exact request stream of poissonTrace()/burstyTrace() for the
 *  same options (see the generator-determinism note above) one
 *  request at a time — O(1) memory however long the trace, which
 *  is what lets a 10M-request sweep run without materializing a
 *  10M-element vector.
 *
 *  The stream is sorted and valid by construction: arrivals are
 *  non-decreasing (gaps are >= 0), ids are 0..n-1 in arrival
 *  order, and the options were domain-checked at construction —
 *  the properties sortAndValidateTrace() establishes for caller-
 *  supplied vectors, which is why the scheduler's generator
 *  overloads skip that O(n log n) pass. */
class TraceGenerator
{
  public:
    TraceGenerator(TraceShape shape, const TraceOptions &options);

    const TraceOptions &options() const { return options_; }

    /** All num_requests requests have been consumed. */
    bool exhausted() const
    {
        return emitted_ >= options_.num_requests && !staged_;
    }

    /** Requests handed out by next() so far. */
    int64_t emitted() const
    {
        return emitted_ - (staged_ ? 1 : 0);
    }

    /** The request next() will return, without consuming it (the
     *  draw happens here; peeking never perturbs the stream).
     *  !exhausted() only. */
    const Request &peek();

    /** Consume and return the next request. !exhausted() only. */
    Request next();

  private:
    void stage();

    TraceShape shape_;
    TraceOptions options_;
    std::mt19937_64 rng_;
    double now_ = 0.0;
    int64_t emitted_ = 0; ///< requests drawn (staged included)
    bool staged_ = false;
    Request staged_request_;
};

/** Uniform arrival source for the scheduler event loops: either a
 *  (sorted, validated) materialized trace or a TraceGenerator,
 *  consumed strictly in (arrival, id) order. The referenced trace
 *  or generator must outlive the cursor. */
class ArrivalCursor
{
  public:
    /** @p trace must already be in (arrival, id) order. */
    explicit ArrivalCursor(const std::vector<Request> &trace)
        : trace_(&trace)
    {}

    explicit ArrivalCursor(TraceGenerator &generator)
        : generator_(&generator)
    {}

    bool exhausted() const
    {
        return trace_ ? index_ >= trace_->size()
                      : generator_->exhausted();
    }

    /** Arrival instant of the next request. !exhausted() only. */
    double nextArrivalMs()
    {
        return trace_ ? (*trace_)[index_].arrival_ms
                      : generator_->peek().arrival_ms;
    }

    /** Consume the next request. !exhausted() only. */
    Request take()
    {
        return trace_ ? (*trace_)[index_++] : generator_->next();
    }

  private:
    const std::vector<Request> *trace_ = nullptr;
    size_t index_ = 0;
    TraceGenerator *generator_ = nullptr;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_TRACE_H
