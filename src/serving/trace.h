/**
 * @file
 * Seeded arrival-trace generators for the serving simulator:
 * Poisson (open-loop steady traffic), bursty (on/off modulated
 * Poisson — the "heavy traffic" shape real frontends see), and
 * replay (hand-written or captured traces).
 *
 * Distribution transforms are hand-rolled on top of
 * std::mt19937_64 (whose output is specified bit-exactly by the
 * standard) instead of <random> distributions (whose mapping is
 * implementation-defined), so every platform generates the
 * identical trace for a given seed — a precondition for the
 * deterministic replay suite.
 */

#ifndef STREAMTENSOR_SERVING_TRACE_H
#define STREAMTENSOR_SERVING_TRACE_H

#include <cstdint>
#include <vector>

#include "serving/request.h"

namespace streamtensor {
namespace serving {

/** Knobs shared by the trace generators. */
struct TraceOptions
{
    int64_t num_requests = 64;
    uint64_t seed = 1;

    /** Mean inter-arrival gap of the base Poisson process. */
    double mean_interarrival_ms = 50.0;

    /** Request length ranges (uniform, inclusive). */
    int64_t min_input_len = 8;
    int64_t max_input_len = 96;
    int64_t min_output_len = 4;
    int64_t max_output_len = 48;

    /** Priority classes drawn uniformly from [0, num_priorities). */
    int num_priorities = 1;

    /** Shared system-prompt modeling: when num_prefix_groups > 0,
     *  each request draws a prefix group uniformly and its prompt
     *  becomes shared_prefix_len common leading tokens (identical
     *  across the group — one physical copy under paged KV) plus
     *  its drawn input length. 0 disables and leaves traces
     *  bit-identical to pre-prefix generators. */
    int64_t num_prefix_groups = 0;
    int64_t shared_prefix_len = 0;

    /** Deadline modeling: when positive, every request gets
     *  deadline_ms = arrival_ms + deadline_slack_ms. Deterministic
     *  (no RNG draw), so enabling it never perturbs the other
     *  drawn fields and the default (0 = no deadlines) leaves
     *  traces bit-identical to older generators. */
    double deadline_slack_ms = 0.0;

    /** Bursty modulation: the arrival rate alternates between a
     *  burst phase (gap / burst_factor) lasting
     *  burst_duty * burst_period_ms and a quiet phase. Used by
     *  burstyTrace only. */
    double burst_period_ms = 2000.0;
    double burst_duty = 0.25;
    double burst_factor = 8.0;
};

/** Open-loop Poisson arrivals: exponential inter-arrival gaps at
 *  the mean rate, uniform lengths and priorities. Sorted by
 *  arrival time; ids are 0..n-1 in arrival order. */
std::vector<Request> poissonTrace(const TraceOptions &options);

/** On/off bursty arrivals: Poisson whose rate is multiplied by
 *  burst_factor inside periodic burst windows. Stresses queue
 *  growth and tail latency. */
std::vector<Request> burstyTrace(const TraceOptions &options);

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_TRACE_H
