#include "serving/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "serving/trace.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace streamtensor {
namespace serving {

namespace {

double
quietNan()
{
    return std::numeric_limits<double>::quiet_NaN();
}

/** One request waiting in the fleet's retry buffer: a failover
 *  waiting out its backoff, a drain hand-off, or an arrival parked
 *  because no replica was eligible. */
struct PendingRequest
{
    Request req;
    ResumeState state;

    /** Failover attempts consumed so far (== state.failovers). */
    int64_t attempts = 0;
};

/** Typed-event categories of the heap core, numbered in the
 *  fleet's documented equal-instant processing order (fleet.h):
 *  completions, then faults, then arrivals, then retry-buffer
 *  deadlines, then due retries. The comparator encodes this order
 *  so heap pops at one instant match the phase order — though
 *  every phase re-reads authoritative state, so the order is a
 *  documented invariant rather than a hidden load-bearing one. */
enum EventCat : int
{
    EvCompletion = 0,
    EvReload = 1, ///< weight-reload window elapsed
    EvFault = 2,
    EvArrival = 3,
    EvDeadline = 4,
    EvRetry = 5,
};

/** One wake-up instant for the heap core. Events are invalidated
 *  lazily (never removed in place): a completion carries the
 *  launch generation it belongs to, retry/deadline events are
 *  checked against the live retry buffer, and anything at or
 *  before the current round was already handled by that round's
 *  phases. */
struct Event
{
    double t = 0.0;
    int cat = EvCompletion;
    int64_t a = 0; ///< replica id (completion) or request id
    int64_t b = 0; ///< launch generation (completion only)
};

/** Min-heap order: (t, cat, a, b) ascending — time first, then the
 *  documented category order, then ids for full determinism. */
struct EventAfter
{
    bool operator()(const Event &x, const Event &y) const
    {
        return std::tie(x.t, x.cat, x.a, x.b) >
               std::tie(y.t, y.cat, y.a, y.b);
    }
};

/** One fleet run: the state and round phases shared by both event
 *  cores. runLegacy() is the original O(n)-per-round loop, kept
 *  as the differential oracle; runHeap() drives the identical
 *  phases off the typed-event heap. */
struct FleetRun
{
    const FleetOptions &options;
    StepCostModel &cost;
    StepCostModel *degraded_cost;
    ArrivalCursor &arrivals;

    static constexpr double inf =
        std::numeric_limits<double>::infinity();

    int n;
    std::vector<ReplicaEngine> engines;
    std::vector<bool> up;
    std::vector<double> up_since;

    /** Instant each replica's in-flight weight reload completes
     *  (+infinity = none pending). A replica mid-reload is down:
     *  up[] stays false until the window elapses, so it takes no
     *  launches and the balancer skips it. */
    std::vector<double> reload_ready;
    std::unique_ptr<LoadBalancer> lb;
    FaultInjector injector;
    FleetResult result;

    /** Retry buffer keyed by (ready instant, id): map order IS
     *  dispatch order, which keeps redispatch deterministic. */
    std::map<std::pair<double, int64_t>, PendingRequest> pending;

    /** Indexes over the buffer kept in lockstep by parkPending /
     *  erasePending: ready instant by request id (to find an
     *  entry from its deadline), and the (deadline, id) set whose
     *  minimum gates the heap core's expiry sweep — O(1) to skip,
     *  O(log n) per actual expiry. */
    std::map<int64_t, double> pending_ready;
    std::set<std::pair<double, int64_t>> pending_deadlines;

    /** Heap-core state. launch generations version each replica's
     *  in-flight step so a completion event orphaned by a crash
     *  is recognized as stale. */
    std::priority_queue<Event, std::vector<Event>, EventAfter>
        events;
    std::vector<int64_t> launch_gen;

    double now = 0.0;

    FleetRun(const FleetOptions &options_in,
             StepCostModel &cost_in,
             StepCostModel *degraded_cost_in,
             ArrivalCursor &arrivals_in)
        : options(options_in), cost(cost_in),
          degraded_cost(degraded_cost_in), arrivals(arrivals_in),
          n(options_in.num_replicas),
          lb(makeLoadBalancer(options_in.balancer)),
          injector(options_in.faults),
          launch_gen(static_cast<size_t>(options_in.num_replicas),
                     0)
    {
        engines.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            engines.emplace_back(options.replica, cost, i);
        up.assign(static_cast<size_t>(n), true);
        up_since.assign(static_cast<size_t>(n), 0.0);
        reload_ready.assign(static_cast<size_t>(n), inf);
        result.metrics.replica_up_ms.assign(
            static_cast<size_t>(n), 0.0);
    }

    double swapReloadMs() const
    {
        return options.swap_reload_ms >= 0.0
                   ? options.swap_reload_ms
                   : options.recovery_reload_ms;
    }

    /** Take @p idx out of service for @p window ms of weight
     *  re-streaming; it rejoins via completeReloads(). Counted
     *  and staged for the heap core here so both call sites
     *  (recover, swap) stay in lockstep. */
    void startReload(size_t idx, double window)
    {
        FleetMetrics &fm = result.metrics;
        reload_ready[idx] = now + window;
        ++fm.reloads;
        fm.reload_ms_total += window;
        events.push({reload_ready[idx], EvReload,
                     static_cast<int64_t>(idx), 0});
    }

    /** Bring every replica whose reload window has elapsed back
     *  into service (id order). Runs at the top of the faults
     *  phase — a reload completing exactly at a fault instant
     *  precedes that instant's events — and again after them, so
     *  a zero-window reload rejoins within its own round. */
    void completeReloads()
    {
        for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
            if (up[i] || reload_ready[i] > now)
                continue;
            up[i] = true;
            up_since[i] = now;
            reload_ready[i] = inf;
        }
    }

    std::vector<ReplicaStatus> statuses()
    {
        std::vector<ReplicaStatus> s(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            auto &eng = engines[static_cast<size_t>(i)];
            s[static_cast<size_t>(i)] = {
                i,
                up[static_cast<size_t>(i)],
                eng.draining(),
                eng.queueDepth(),
                eng.activeCount(),
                eng.kvLoadTokens()};
        }
        return s;
    }

    double backoffMs(int64_t attempts) const
    {
        double b = options.retry_backoff_ms;
        for (int64_t k = 1; k < attempts; ++k)
            b *= options.retry_backoff_factor;
        return b;
    }

    void rejectFleet(const Request &r, RejectReason reason)
    {
        FleetMetrics &fm = result.metrics;
        switch (reason) {
        case RejectReason::QueueFull:
            ++fm.rejected_queue_full;
            break;
        case RejectReason::TooLong:
            ++fm.rejected_too_long;
            break;
        case RejectReason::DeadlineExpired:
            ++fm.expired_deadline;
            break;
        case RejectReason::Drained:
            ++fm.rejected_drained;
            break;
        }
        result.rejected.push_back(
            {r.id, r.arrival_ms, reason, now});
    }

    void loseRequest(const Request &r, int64_t attempts)
    {
        ++result.metrics.requests_lost;
        result.lost.push_back({r.id, now, attempts});
    }

    /** Insert into the retry buffer, maintain its indexes, and
     *  stage the wake-ups the legacy scan would have derived: a
     *  retry event when the entry becomes ready in the future, a
     *  deadline event when it could expire in the future. Entries
     *  ready at or before now need no event — they are retried by
     *  every round and never wake the loop on their own (exactly
     *  the legacy next_t rule). */
    void parkPending(double ready, PendingRequest pr)
    {
        int64_t id = pr.req.id;
        double deadline = pr.req.deadline_ms;
        pending[{ready, id}] = std::move(pr);
        pending_ready[id] = ready;
        if (deadline > 0.0)
            pending_deadlines.insert({deadline, id});
        if (ready > now)
            events.push({ready, EvRetry, id, 0});
        if (deadline > now)
            events.push({deadline, EvDeadline, id, 0});
    }

    using PendingIt = std::map<std::pair<double, int64_t>,
                               PendingRequest>::iterator;

    PendingIt erasePending(PendingIt it)
    {
        const Request &r = it->second.req;
        pending_ready.erase(r.id);
        if (r.deadline_ms > 0.0)
            pending_deadlines.erase({r.deadline_ms, r.id});
        return pending.erase(it);
    }

    void dispatchArrival(const Request &r)
    {
        // servable() is a pure function of the shared replica
        // options, so one engine answers for the whole fleet.
        if (!engines[0].servable(r)) {
            rejectFleet(r, RejectReason::TooLong);
            return;
        }
        if (r.deadline_ms > 0.0 && r.deadline_ms <= now) {
            rejectFleet(r, RejectReason::DeadlineExpired);
            return;
        }
        int target = lb->pick(r, statuses());
        if (target < 0) {
            // Total outage: park with no attempt consumed; the
            // request dispatches the instant a replica recovers.
            parkPending(now, {r, ResumeState{}, 0});
            return;
        }
        engines[static_cast<size_t>(target)].offer(r, now);
    }

    /** Route every due retry-buffer entry to an eligible replica
     *  (back into the buffer, same key, when there is none).
     *  Readmission is front-insertion, so dispatching in *reverse*
     *  (ready, id) order leaves earlier requests nearer the head
     *  on a shared target. */
    void redispatchDue()
    {
        std::vector<std::pair<std::pair<double, int64_t>,
                              PendingRequest>>
            due;
        for (auto it = pending.begin();
             it != pending.end() && it->first.first <= now;) {
            due.emplace_back(it->first, std::move(it->second));
            it = erasePending(it);
        }
        for (auto it = due.rbegin(); it != due.rend(); ++it) {
            int target = lb->pick(it->second.req, statuses());
            if (target < 0)
                parkPending(it->first.first,
                            std::move(it->second));
            else
                engines[static_cast<size_t>(target)].readmit(
                    it->second.req, it->second.state);
        }
    }

    void applyFault(const FaultEvent &e)
    {
        FleetMetrics &fm = result.metrics;
        auto idx = static_cast<size_t>(e.replica);
        ReplicaEngine &eng = engines[idx];
        switch (e.kind) {
        case FaultKind::Crash: {
            if (!up[idx])
                break; // already down: tolerant no-op
            up[idx] = false;
            fm.replica_up_ms[idx] += now - up_since[idx];
            ++fm.crashes;
            if (eng.busy())
                ++fm.aborted_steps;
            // A crash wipes transient state; standing slow /
            // degrade / drain windows re-apply only via their own
            // events landing while the replica is down.
            eng.setDraining(false);
            eng.setSlowFactor(1.0);
            eng.setCost(cost);
            for (auto &ev : eng.crash()) {
                ev.state.failovers += 1;
                ++fm.failovers;
                if (ev.state.failovers > options.max_retries) {
                    loseRequest(ev.req, ev.state.failovers);
                } else {
                    double ready =
                        now + backoffMs(ev.state.failovers);
                    parkPending(ready, {ev.req, ev.state,
                                        ev.state.failovers});
                }
            }
            break;
        }
        case FaultKind::Recover:
            // Tolerant no-op when up — or mid-reload: a second
            // Recover must not restart (or shortcut) the window.
            if (up[idx] || reload_ready[idx] < inf)
                break;
            ++fm.recoveries;
            if (options.recovery_reload_ms > 0.0) {
                // The replica spends the reload window
                // re-streaming weights from storage before it is
                // eligible again; completeReloads() rejoins it.
                startReload(idx, options.recovery_reload_ms);
            } else {
                up[idx] = true;
                up_since[idx] = now;
            }
            break;
        case FaultKind::SlowStart:
            // Takes effect at the next launch; an in-flight step
            // keeps the cost it was launched with.
            eng.setSlowFactor(e.factor);
            ++fm.slowdowns;
            break;
        case FaultKind::SlowEnd:
            eng.setSlowFactor(1.0);
            break;
        case FaultKind::DegradeStart:
            if (degraded_cost) {
                eng.setCost(*degraded_cost);
                ++fm.degrades;
            }
            break;
        case FaultKind::DegradeEnd:
            eng.setCost(cost);
            break;
        case FaultKind::DrainStart:
            if (up[idx] && !eng.draining()) {
                eng.setDraining(true);
                ++fm.drains;
                // Graceful: the queue re-routes immediately, no
                // attempt consumed, no backoff — nothing was
                // lost.
                for (auto &ev : eng.evacuateQueue())
                    parkPending(now, {ev.req, ev.state,
                                      ev.state.failovers});
            }
            break;
        case FaultKind::DrainEnd:
            eng.setDraining(false);
            break;
        case FaultKind::Swap: {
            if (!up[idx])
                break; // down or mid-reload: tolerant no-op
            up[idx] = false;
            fm.replica_up_ms[idx] += now - up_since[idx];
            ++fm.swaps;
            if (eng.busy())
                ++fm.aborted_steps;
            eng.setDraining(false);
            // Graceful evacuation: operator-initiated, so no
            // retry attempt is consumed and no backoff applies —
            // but KV dies with the old weights, so resumed
            // requests recompute their prefix elsewhere.
            for (auto &ev : eng.crash())
                parkPending(now, {ev.req, ev.state,
                                  ev.state.failovers});
            startReload(idx, swapReloadMs());
            break;
        }
        }
    }

    void faultsPhase()
    {
        // Reloads elapsing exactly at a fault instant complete
        // before that instant's events; the trailing pass lets a
        // zero-window reload (instant swap) rejoin immediately.
        completeReloads();
        for (const auto &e : injector.drainDue(now))
            applyFault(e);
        completeReloads();
    }

    void arrivalsPhase()
    {
        while (!arrivals.exhausted() &&
               arrivals.nextArrivalMs() <= now)
            dispatchArrival(arrivals.take());
    }

    /** Committed steps across the fleet, and whether any work
     *  remains anywhere. O(num_replicas). */
    std::pair<int64_t, bool> progress()
    {
        int64_t total_steps = 0;
        bool any_busy = false, any_work = false;
        for (auto &eng : engines) {
            total_steps += eng.result().metrics.steps;
            any_busy = any_busy || eng.busy();
            any_work = any_work || eng.hasWork();
        }
        bool work_left = any_busy || any_work ||
                         !pending.empty() ||
                         !arrivals.exhausted();
        return {total_steps, work_left};
    }

    /** Work remains but no future event can revive a replica to
     *  run it: every parked request is lost. */
    void strandPending()
    {
        for (const auto &[key, p] : pending)
            loseRequest(p.req, p.attempts);
        pending.clear();
        pending_ready.clear();
        pending_deadlines.clear();
    }

    void finalizeRun()
    {
        FleetMetrics &fm = result.metrics;
        for (int i = 0; i < n; ++i) {
            auto idx = static_cast<size_t>(i);
            if (up[idx])
                fm.replica_up_ms[idx] += now - up_since[idx];
            ReplicaEngine &eng = engines[idx];
            eng.finalize(now);
            const ServingMetrics &m = eng.result().metrics;
            fm.requests.insert(fm.requests.end(),
                               m.requests.begin(),
                               m.requests.end());
            fm.completed += m.completed;
            fm.records_complete =
                fm.records_complete && m.records_complete;
            // Replica-id merge order keeps the fleet sketch
            // bit-identical across runs (and event cores).
            fm.latency_sketch.merge(m.latency_sketch);
            fm.rejected_queue_full += m.rejected_queue_full;
            fm.rejected_too_long += m.rejected_too_long;
            fm.expired_deadline += m.expired_deadline;
            fm.rejected_drained += m.rejected_drained;
            fm.deadline_misses += m.deadline_misses;
            fm.preemptions += m.preemptions;
            fm.total_output_tokens += m.total_output_tokens;
            fm.weight_stall_ms += m.weight_stall_ms;
            fm.steps += m.steps;
            result.rejected.insert(result.rejected.end(),
                                   eng.result().rejected.begin(),
                                   eng.result().rejected.end());
            result.replicas.push_back(std::move(eng.result()));
        }
        std::stable_sort(fm.requests.begin(), fm.requests.end(),
                         [](const RequestMetrics &a,
                            const RequestMetrics &b) {
                             return a.finish_ms < b.finish_ms ||
                                    (a.finish_ms == b.finish_ms &&
                                     a.id < b.id);
                         });
        std::stable_sort(result.rejected.begin(),
                         result.rejected.end(),
                         [](const RejectedRequest &a,
                            const RejectedRequest &b) {
                             return a.at_ms < b.at_ms ||
                                    (a.at_ms == b.at_ms &&
                                     a.id < b.id);
                         });
        ++fm.record_revision;
        fm.makespan_ms = now;
    }

    // ---- Legacy core: the original per-round scans, kept as the
    // differential oracle for the heap core. ----

    FleetResult runLegacy()
    {
        while (true) {
            // 1. Step completions (id order). A step ending
            // exactly at a crash instant completes first: its
            // tokens were produced before the failure.
            for (auto &eng : engines)
                if (eng.busy() && eng.stepEndMs() <= now)
                    eng.completeStep();

            // 2. Fault events, in plan firing order — before
            // arrivals, so an arrival at a crash instant sees the
            // replica down.
            faultsPhase();

            // 3. Arrivals, in (arrival, id) order.
            arrivalsPhase();

            // 4. Deadline sweeps: replica queues, then the retry
            // buffer (a parked request can expire mid-outage).
            for (auto &eng : engines)
                eng.expireDeadlines(now);
            for (auto it = pending.begin();
                 it != pending.end();) {
                const Request &r = it->second.req;
                if (r.deadline_ms > 0.0 && r.deadline_ms <= now) {
                    rejectFleet(r, RejectReason::DeadlineExpired);
                    it = erasePending(it);
                } else {
                    ++it;
                }
            }

            // 5. Due retries.
            redispatchDue();

            // 6. Launch a step on every idle up replica (id
            // order).
            for (int i = 0; i < n; ++i) {
                auto &eng = engines[static_cast<size_t>(i)];
                if (up[static_cast<size_t>(i)] && !eng.busy()) {
                    eng.launchStep(now);
                    ST_ASSERT(eng.busy() || !eng.hasWork() ||
                                  eng.draining(),
                              "idle up replica refused its work");
                }
            }

            auto [total_steps, work_left] = progress();
            if (total_steps >= options.replica.max_steps &&
                work_left) {
                result.hit_step_limit = true;
                break;
            }
            if (!work_left)
                break; // served everything; residual faults moot

            // Advance to the next event: earliest step end,
            // fault, arrival, future retry, or parked-request
            // deadline (parked entries with ready <= now wait on
            // one of the others — or expire, or strand).
            double next_t = injector.nextAtMs();
            for (auto &eng : engines)
                if (eng.busy())
                    next_t = std::min(next_t, eng.stepEndMs());
            for (int i = 0; i < n; ++i)
                if (reload_ready[static_cast<size_t>(i)] > now)
                    next_t = std::min(
                        next_t,
                        reload_ready[static_cast<size_t>(i)]);
            if (!arrivals.exhausted())
                next_t =
                    std::min(next_t, arrivals.nextArrivalMs());
            for (const auto &[key, p] : pending) {
                if (key.first > now)
                    next_t = std::min(next_t, key.first);
                if (p.req.deadline_ms > now)
                    next_t = std::min(next_t, p.req.deadline_ms);
            }
            if (next_t == inf) {
                strandPending();
                break;
            }
            ST_ASSERT(next_t > now,
                      "fleet clock failed to advance");
            now = next_t;
        }
        finalizeRun();
        return std::move(result);
    }

    // ---- Heap core -------------------------------------------

    /** Earliest valid future wake-up, discarding consumed
     *  (t <= now) and stale entries as they surface. +infinity
     *  when nothing valid remains (the stranding condition). */
    double nextEventTime()
    {
        while (!events.empty()) {
            const Event &e = events.top();
            if (e.t <= now) {
                // A round at `now` already processed everything
                // due at or before it.
                events.pop();
                continue;
            }
            bool valid = true;
            switch (e.cat) {
            case EvCompletion: {
                auto idx = static_cast<size_t>(e.a);
                valid = engines[idx].busy() &&
                        launch_gen[idx] == e.b;
                break;
            }
            case EvReload: {
                auto idx = static_cast<size_t>(e.a);
                valid = !up[idx] && reload_ready[idx] == e.t;
                break;
            }
            case EvFault:
            case EvArrival:
                // Fault times are immutable; a stale arrival
                // event is impossible while t > now (arrivals are
                // ingested the round their event fires).
                break;
            case EvDeadline:
                valid = pending_deadlines.count({e.t, e.a}) > 0;
                break;
            case EvRetry:
                valid = pending.count({e.t, e.a}) > 0;
                break;
            }
            if (!valid) {
                events.pop();
                continue;
            }
            return e.t;
        }
        return inf;
    }

    FleetResult runHeap()
    {
        // The pool is per-run and only built when asked for:
        // serial runs must not pay thread spin-up, and a local
        // pool keeps fleet runs independent of the process-wide
        // shared() pool's sizing.
        std::optional<support::ThreadPool> pool;
        if (options.step_threads >= 2)
            pool.emplace(options.step_threads);
        // Parallel launches additionally need order-independent
        // step costing; completions are always engine-local.
        const bool launches_parallel_safe =
            cost.concurrentSafe() &&
            (!degraded_cost || degraded_cost->concurrentSafe());

        for (const auto &e : options.faults.events)
            events.push({e.at_ms, EvFault, 0, 0});
        double arrival_event_t = -1.0;

        std::vector<int64_t> due;
        while (true) {
            // 1. Step completions (committed in id order; the
            // work itself is engine-local, so it may fan out).
            due.clear();
            for (int i = 0; i < n; ++i) {
                auto &eng = engines[static_cast<size_t>(i)];
                if (eng.busy() && eng.stepEndMs() <= now)
                    due.push_back(i);
            }
            if (pool && due.size() > 1)
                pool->run(static_cast<int64_t>(due.size()),
                          [&](int64_t k) {
                              engines[static_cast<size_t>(
                                          due[static_cast<
                                              size_t>(k)])]
                                  .completeStep();
                          });
            else
                for (int64_t i : due)
                    engines[static_cast<size_t>(i)]
                        .completeStep();

            // 2. Faults.
            faultsPhase();

            // 3. Arrivals; then stage the wake-up for the next
            // one (deduplicated — rounds between arrivals must
            // not re-push it).
            arrivalsPhase();
            if (!arrivals.exhausted() &&
                arrivals.nextArrivalMs() != arrival_event_t) {
                arrival_event_t = arrivals.nextArrivalMs();
                events.push({arrival_event_t, EvArrival, 0, 0});
            }

            // 4. Deadline sweeps. Engine queues are O(1) when
            // deadline-free (queue.h); the retry buffer expires
            // off its (deadline, id) index in deadline order —
            // the rejection log sorts by (instant, id) at
            // finalize, so the in-round order is free.
            for (auto &eng : engines)
                eng.expireDeadlines(now);
            while (!pending_deadlines.empty() &&
                   pending_deadlines.begin()->first <= now) {
                auto [deadline, id] = *pending_deadlines.begin();
                auto it = pending.find({pending_ready.at(id), id});
                ST_ASSERT(it != pending.end(),
                          "retry-buffer deadline index out of "
                          "sync");
                rejectFleet(it->second.req,
                            RejectReason::DeadlineExpired);
                erasePending(it);
            }

            // 5. Due retries.
            redispatchDue();

            // 6. Launches. Costing fans out only when the cost
            // model is order-independent; busy-state commits and
            // completion events stay serial in id order either
            // way.
            due.clear();
            for (int i = 0; i < n; ++i) {
                auto &eng = engines[static_cast<size_t>(i)];
                if (up[static_cast<size_t>(i)] && !eng.busy())
                    due.push_back(i);
            }
            if (pool && launches_parallel_safe && due.size() > 1)
                pool->run(static_cast<int64_t>(due.size()),
                          [&](int64_t k) {
                              engines[static_cast<size_t>(
                                          due[static_cast<
                                              size_t>(k)])]
                                  .launchStep(now);
                          });
            else
                for (int64_t i : due)
                    engines[static_cast<size_t>(i)].launchStep(
                        now);
            for (int64_t i : due) {
                auto idx = static_cast<size_t>(i);
                auto &eng = engines[idx];
                ST_ASSERT(eng.busy() || !eng.hasWork() ||
                              eng.draining(),
                          "idle up replica refused its work");
                if (eng.busy()) {
                    ++launch_gen[idx];
                    events.push({eng.stepEndMs(), EvCompletion,
                                 i, launch_gen[idx]});
                }
            }

            auto [total_steps, work_left] = progress();
            if (total_steps >= options.replica.max_steps &&
                work_left) {
                result.hit_step_limit = true;
                break;
            }
            if (!work_left)
                break; // served everything; residual faults moot

            double next_t = nextEventTime();
            if (next_t == inf) {
                strandPending();
                break;
            }
            ST_ASSERT(next_t > now,
                      "fleet clock failed to advance");
            now = next_t;
        }
        finalizeRun();
        return std::move(result);
    }
};

} // namespace

double
FleetMetrics::availability() const
{
    int64_t outcomes = completed + requests_lost + expired_deadline;
    return outcomes > 0 ? static_cast<double>(completed) /
                              static_cast<double>(outcomes)
                        : 1.0;
}

double
FleetMetrics::uptimeFraction() const
{
    if (makespan_ms <= 0.0 || replica_up_ms.empty())
        return 1.0;
    double up = 0.0;
    for (double ms : replica_up_ms)
        up += ms;
    return up / (makespan_ms *
                 static_cast<double>(replica_up_ms.size()));
}

double
FleetMetrics::servedRequestsPerSecond() const
{
    return makespan_ms > 0.0
               ? static_cast<double>(completed) / makespan_ms * 1e3
               : 0.0;
}

double
FleetMetrics::latencyPercentileMs(double p) const
{
    if (!records_complete)
        return latency_sketch.quantile(p).value_or(quietNan());
    std::pair<int64_t, int64_t> key{
        record_revision, static_cast<int64_t>(requests.size())};
    if (sorted_latencies_key_ != key) {
        sorted_latencies_.clear();
        sorted_latencies_.reserve(requests.size());
        for (const auto &r : requests)
            sorted_latencies_.push_back(r.latencyMs());
        std::sort(sorted_latencies_.begin(),
                  sorted_latencies_.end());
        sorted_latencies_key_ = key;
    }
    return percentileOfSorted(sorted_latencies_, p)
        .value_or(quietNan());
}

FleetScheduler::FleetScheduler(FleetOptions options,
                               StepCostModel &cost,
                               StepCostModel *degraded_cost)
    : options_(std::move(options)), cost_(cost),
      degraded_cost_(degraded_cost)
{
    ST_CHECK(options_.num_replicas >= 1, "fleet needs replicas");
    ST_CHECK(options_.max_retries >= 0, "retry budget domain");
    ST_CHECK(options_.retry_backoff_ms >= 0.0,
             "retry backoff domain");
    ST_CHECK(options_.retry_backoff_factor >= 1.0,
             "retry backoff factor domain");
    ST_CHECK(options_.step_threads >= 1,
             "step thread count domain");
    ST_CHECK(options_.recovery_reload_ms >= 0.0,
             "recovery reload domain");
    validateSchedulerOptions(options_.replica);
    for (const auto &e : options_.faults.events)
        ST_CHECK(e.replica >= 0 &&
                     e.replica < options_.num_replicas,
                 "fault plan names a replica outside the fleet");
}

FleetResult
FleetScheduler::run(std::vector<Request> trace)
{
    sortAndValidateTrace(trace);
    ArrivalCursor arrivals(trace);
    return runCursor(arrivals);
}

FleetResult
FleetScheduler::run(TraceGenerator &trace)
{
    // The generator's stream is already in (arrival, id) order
    // and domain-valid by construction — see trace.h.
    ArrivalCursor arrivals(trace);
    return runCursor(arrivals);
}

FleetResult
FleetScheduler::runCursor(ArrivalCursor &arrivals)
{
    FleetRun run(options_, cost_, degraded_cost_, arrivals);
    return options_.event_core == FleetEventCore::Heap
               ? run.runHeap()
               : run.runLegacy();
}

} // namespace serving
} // namespace streamtensor
