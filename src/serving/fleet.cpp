#include "serving/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

double
quietNan()
{
    return std::numeric_limits<double>::quiet_NaN();
}

/** One request waiting in the fleet's retry buffer: a failover
 *  waiting out its backoff, a drain hand-off, or an arrival parked
 *  because no replica was eligible. */
struct PendingRequest
{
    Request req;
    ResumeState state;

    /** Failover attempts consumed so far (== state.failovers). */
    int64_t attempts = 0;
};

} // namespace

double
FleetMetrics::availability() const
{
    int64_t outcomes = completed + requests_lost + expired_deadline;
    return outcomes > 0 ? static_cast<double>(completed) /
                              static_cast<double>(outcomes)
                        : 1.0;
}

double
FleetMetrics::uptimeFraction() const
{
    if (makespan_ms <= 0.0 || replica_up_ms.empty())
        return 1.0;
    double up = 0.0;
    for (double ms : replica_up_ms)
        up += ms;
    return up / (makespan_ms *
                 static_cast<double>(replica_up_ms.size()));
}

double
FleetMetrics::servedRequestsPerSecond() const
{
    return makespan_ms > 0.0
               ? static_cast<double>(completed) / makespan_ms * 1e3
               : 0.0;
}

double
FleetMetrics::latencyPercentileMs(double p) const
{
    std::vector<double> latencies;
    latencies.reserve(requests.size());
    for (const auto &r : requests)
        latencies.push_back(r.latencyMs());
    return percentile(std::move(latencies), p)
        .value_or(quietNan());
}

FleetScheduler::FleetScheduler(FleetOptions options,
                               StepCostModel &cost,
                               StepCostModel *degraded_cost)
    : options_(std::move(options)), cost_(cost),
      degraded_cost_(degraded_cost)
{
    ST_CHECK(options_.num_replicas >= 1, "fleet needs replicas");
    ST_CHECK(options_.max_retries >= 0, "retry budget domain");
    ST_CHECK(options_.retry_backoff_ms >= 0.0,
             "retry backoff domain");
    ST_CHECK(options_.retry_backoff_factor >= 1.0,
             "retry backoff factor domain");
    validateSchedulerOptions(options_.replica);
    for (const auto &e : options_.faults.events)
        ST_CHECK(e.replica >= 0 &&
                     e.replica < options_.num_replicas,
                 "fault plan names a replica outside the fleet");
}

FleetResult
FleetScheduler::run(std::vector<Request> trace)
{
    sortAndValidateTrace(trace);
    const double inf = std::numeric_limits<double>::infinity();
    const int n = options_.num_replicas;

    std::vector<ReplicaEngine> engines;
    engines.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        engines.emplace_back(options_.replica, cost_, i);

    std::vector<bool> up(static_cast<size_t>(n), true);
    std::vector<double> up_since(static_cast<size_t>(n), 0.0);
    auto lb = makeLoadBalancer(options_.balancer);
    FaultInjector injector(options_.faults);

    FleetResult result;
    FleetMetrics &fm = result.metrics;
    fm.replica_up_ms.assign(static_cast<size_t>(n), 0.0);

    // Retry buffer keyed by (ready instant, id): map order IS
    // dispatch order, which keeps redispatch deterministic.
    std::map<std::pair<double, int64_t>, PendingRequest> pending;
    double now = 0.0;
    size_t next_arrival = 0;

    auto statuses = [&]() {
        std::vector<ReplicaStatus> s(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            auto &eng = engines[static_cast<size_t>(i)];
            s[static_cast<size_t>(i)] = {
                i,
                up[static_cast<size_t>(i)],
                eng.draining(),
                eng.queueDepth(),
                eng.activeCount(),
                eng.kvLoadTokens()};
        }
        return s;
    };

    auto backoffMs = [&](int64_t attempts) {
        double b = options_.retry_backoff_ms;
        for (int64_t k = 1; k < attempts; ++k)
            b *= options_.retry_backoff_factor;
        return b;
    };

    auto rejectFleet = [&](const Request &r, RejectReason reason) {
        switch (reason) {
        case RejectReason::QueueFull:
            ++fm.rejected_queue_full;
            break;
        case RejectReason::TooLong:
            ++fm.rejected_too_long;
            break;
        case RejectReason::DeadlineExpired:
            ++fm.expired_deadline;
            break;
        case RejectReason::Drained:
            ++fm.rejected_drained;
            break;
        }
        result.rejected.push_back(
            {r.id, r.arrival_ms, reason, now});
    };

    auto loseRequest = [&](const Request &r, int64_t attempts) {
        ++fm.requests_lost;
        result.lost.push_back({r.id, now, attempts});
    };

    auto dispatchArrival = [&](const Request &r) {
        // servable() is a pure function of the shared replica
        // options, so one engine answers for the whole fleet.
        if (!engines[0].servable(r)) {
            rejectFleet(r, RejectReason::TooLong);
            return;
        }
        if (r.deadline_ms > 0.0 && r.deadline_ms <= now) {
            rejectFleet(r, RejectReason::DeadlineExpired);
            return;
        }
        int target = lb->pick(r, statuses());
        if (target < 0) {
            // Total outage: park with no attempt consumed; the
            // request dispatches the instant a replica recovers.
            pending[{now, r.id}] = {r, ResumeState{}, 0};
            return;
        }
        engines[static_cast<size_t>(target)].offer(r, now);
    };

    // Route every due retry-buffer entry to an eligible replica
    // (back into the buffer, same key, when there is none).
    // Readmission is front-insertion, so dispatching in *reverse*
    // (ready, id) order leaves earlier requests nearer the head on
    // a shared target.
    auto redispatchDue = [&]() {
        std::vector<std::pair<std::pair<double, int64_t>,
                              PendingRequest>>
            due;
        for (auto it = pending.begin();
             it != pending.end() && it->first.first <= now;) {
            due.emplace_back(it->first, std::move(it->second));
            it = pending.erase(it);
        }
        for (auto it = due.rbegin(); it != due.rend(); ++it) {
            int target = lb->pick(it->second.req, statuses());
            if (target < 0)
                pending.emplace(it->first,
                                std::move(it->second));
            else
                engines[static_cast<size_t>(target)].readmit(
                    it->second.req, it->second.state);
        }
    };

    auto applyFault = [&](const FaultEvent &e) {
        auto idx = static_cast<size_t>(e.replica);
        ReplicaEngine &eng = engines[idx];
        switch (e.kind) {
        case FaultKind::Crash: {
            if (!up[idx])
                break; // already down: tolerant no-op
            up[idx] = false;
            fm.replica_up_ms[idx] += now - up_since[idx];
            ++fm.crashes;
            if (eng.busy())
                ++fm.aborted_steps;
            // A crash wipes transient state; standing slow /
            // degrade / drain windows re-apply only via their own
            // events landing while the replica is down.
            eng.setDraining(false);
            eng.setSlowFactor(1.0);
            eng.setCost(cost_);
            for (auto &ev : eng.crash()) {
                ev.state.failovers += 1;
                ++fm.failovers;
                if (ev.state.failovers > options_.max_retries) {
                    loseRequest(ev.req, ev.state.failovers);
                } else {
                    double ready =
                        now + backoffMs(ev.state.failovers);
                    pending[{ready, ev.req.id}] = {
                        ev.req, ev.state, ev.state.failovers};
                }
            }
            break;
        }
        case FaultKind::Recover:
            if (up[idx])
                break;
            up[idx] = true;
            up_since[idx] = now;
            ++fm.recoveries;
            break;
        case FaultKind::SlowStart:
            // Takes effect at the next launch; an in-flight step
            // keeps the cost it was launched with.
            eng.setSlowFactor(e.factor);
            ++fm.slowdowns;
            break;
        case FaultKind::SlowEnd:
            eng.setSlowFactor(1.0);
            break;
        case FaultKind::DegradeStart:
            if (degraded_cost_) {
                eng.setCost(*degraded_cost_);
                ++fm.degrades;
            }
            break;
        case FaultKind::DegradeEnd:
            eng.setCost(cost_);
            break;
        case FaultKind::DrainStart:
            if (up[idx] && !eng.draining()) {
                eng.setDraining(true);
                ++fm.drains;
                // Graceful: the queue re-routes immediately, no
                // attempt consumed, no backoff — nothing was
                // lost.
                for (auto &ev : eng.evacuateQueue())
                    pending[{now, ev.req.id}] = {
                        ev.req, ev.state, ev.state.failovers};
            }
            break;
        case FaultKind::DrainEnd:
            eng.setDraining(false);
            break;
        }
    };

    while (true) {
        // 1. Step completions (id order). A step ending exactly at
        // a crash instant completes first: its tokens were
        // produced before the failure.
        for (auto &eng : engines)
            if (eng.busy() && eng.stepEndMs() <= now)
                eng.completeStep();

        // 2. Fault events, in plan firing order — before arrivals,
        // so an arrival at a crash instant sees the replica down.
        for (const auto &e : injector.drainDue(now))
            applyFault(e);

        // 3. Arrivals, in (arrival, id) order.
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival_ms <= now)
            dispatchArrival(trace[next_arrival++]);

        // 4. Deadline sweeps: replica queues, then the retry
        // buffer (a parked request can expire mid-outage).
        for (auto &eng : engines)
            eng.expireDeadlines(now);
        for (auto it = pending.begin(); it != pending.end();) {
            const Request &r = it->second.req;
            if (r.deadline_ms > 0.0 && r.deadline_ms <= now) {
                rejectFleet(r, RejectReason::DeadlineExpired);
                it = pending.erase(it);
            } else {
                ++it;
            }
        }

        // 5. Due retries.
        redispatchDue();

        // 6. Launch a step on every idle up replica (id order).
        for (int i = 0; i < n; ++i) {
            auto &eng = engines[static_cast<size_t>(i)];
            if (up[static_cast<size_t>(i)] && !eng.busy()) {
                eng.launchStep(now);
                ST_ASSERT(eng.busy() || !eng.hasWork() ||
                              eng.draining(),
                          "idle up replica refused its work");
            }
        }

        int64_t total_steps = 0;
        bool any_busy = false, any_work = false;
        for (auto &eng : engines) {
            total_steps += eng.result().metrics.steps;
            any_busy = any_busy || eng.busy();
            any_work = any_work || eng.hasWork();
        }
        bool work_left = any_busy || any_work ||
                         !pending.empty() ||
                         next_arrival < trace.size();
        if (total_steps >= options_.replica.max_steps &&
            work_left) {
            result.hit_step_limit = true;
            break;
        }
        if (!work_left)
            break; // served everything; residual faults are moot

        // Advance to the next event: earliest step end, fault,
        // arrival, future retry, or parked-request deadline
        // (parked entries with ready <= now wait on one of the
        // others — or expire, or strand).
        double next_t = injector.nextAtMs();
        for (auto &eng : engines)
            if (eng.busy())
                next_t = std::min(next_t, eng.stepEndMs());
        if (next_arrival < trace.size())
            next_t = std::min(next_t,
                              trace[next_arrival].arrival_ms);
        for (const auto &[key, p] : pending) {
            if (key.first > now)
                next_t = std::min(next_t, key.first);
            if (p.req.deadline_ms > now)
                next_t = std::min(next_t, p.req.deadline_ms);
        }
        if (next_t == inf) {
            // Stranded: work remains but no future event can
            // revive a replica to run it.
            for (const auto &[key, p] : pending)
                loseRequest(p.req, p.attempts);
            pending.clear();
            break;
        }
        ST_ASSERT(next_t > now, "fleet clock failed to advance");
        now = next_t;
    }

    // Finalize replicas against the fleet makespan and merge.
    for (int i = 0; i < n; ++i) {
        auto idx = static_cast<size_t>(i);
        if (up[idx])
            fm.replica_up_ms[idx] += now - up_since[idx];
        ReplicaEngine &eng = engines[idx];
        eng.finalize(now);
        const ServingMetrics &m = eng.result().metrics;
        fm.requests.insert(fm.requests.end(),
                           m.requests.begin(),
                           m.requests.end());
        fm.rejected_queue_full += m.rejected_queue_full;
        fm.rejected_too_long += m.rejected_too_long;
        fm.expired_deadline += m.expired_deadline;
        fm.rejected_drained += m.rejected_drained;
        fm.deadline_misses += m.deadline_misses;
        fm.preemptions += m.preemptions;
        fm.total_output_tokens += m.total_output_tokens;
        fm.steps += m.steps;
        result.rejected.insert(result.rejected.end(),
                               eng.result().rejected.begin(),
                               eng.result().rejected.end());
        result.replicas.push_back(std::move(eng.result()));
    }
    std::stable_sort(fm.requests.begin(), fm.requests.end(),
                     [](const RequestMetrics &a,
                        const RequestMetrics &b) {
                         return a.finish_ms < b.finish_ms ||
                                (a.finish_ms == b.finish_ms &&
                                 a.id < b.id);
                     });
    std::stable_sort(result.rejected.begin(),
                     result.rejected.end(),
                     [](const RejectedRequest &a,
                        const RejectedRequest &b) {
                         return a.at_ms < b.at_ms ||
                                (a.at_ms == b.at_ms &&
                                 a.id < b.id);
                     });
    fm.completed = static_cast<int64_t>(fm.requests.size());
    fm.makespan_ms = now;
    return result;
}

} // namespace serving
} // namespace streamtensor
