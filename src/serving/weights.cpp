#include "serving/weights.h"

#include <algorithm>
#include <utility>

#include "support/error.h"
#include "support/math_util.h"
#include "support/thread_pool.h"

namespace streamtensor {
namespace serving {

namespace {

int64_t
packedBytes(int64_t params, ir::DataType dtype)
{
    return ceilDiv(params * ir::bitWidth(dtype), 8);
}

} // namespace

ModelArtifact
ModelArtifact::fromConfig(const models::LlmConfig &config)
{
    ST_CHECK(config.layers >= 1, "artifact needs layers");
    ST_CHECK(config.hidden >= 1 && config.ffn_hidden >= 1 &&
                 config.heads >= 1 && config.kv_heads >= 1 &&
                 config.head_dim >= 1,
             "artifact config dimensions must be positive");

    int64_t q_dim = config.heads * config.head_dim;
    int64_t kv_dim = config.kv_heads * config.head_dim;
    ir::DataType dtype = config.weight_dtype;

    LayerManifest layer;
    auto add = [&](const char *name, int64_t params) {
        int64_t bytes = packedBytes(params, dtype);
        layer.tensors.push_back({name, bytes});
        layer.bytes += bytes;
    };
    add("wq", config.hidden * q_dim);
    add("wk", config.hidden * kv_dim);
    add("wv", config.hidden * kv_dim);
    add("wo", q_dim * config.hidden);
    if (config.activation == models::Activation::Silu) {
        add("w_gate", config.hidden * config.ffn_hidden);
        add("w_up", config.hidden * config.ffn_hidden);
        add("w_down", config.ffn_hidden * config.hidden);
    } else {
        add("w_fc1", config.hidden * config.ffn_hidden);
        add("w_fc2", config.ffn_hidden * config.hidden);
    }
    add("norms", 2 * config.hidden);

    ModelArtifact artifact;
    artifact.model = config.name;
    artifact.layers.assign(static_cast<size_t>(config.layers),
                           layer);
    artifact.total_bytes = layer.bytes * config.layers;
    return artifact;
}

double
WeightStreamPlan::gatedComputeEndMs(double start_ms_in,
                                    double compute_ms,
                                    bool overlap) const
{
    ST_CHECK(compute_ms >= 0.0, "compute time domain");
    if (empty())
        return start_ms_in + compute_ms;
    if (!overlap)
        return std::max(start_ms_in, end_ms) + compute_ms;
    double per_layer_ms =
        compute_ms / static_cast<double>(layer_ready_ms.size());
    double t = start_ms_in;
    for (double ready : layer_ready_ms)
        t = std::max(t, ready) + per_layer_ms;
    // The chained per-layer sum can undershoot compute_ms by an
    // ulp when nothing gated; the documented lower bound wins.
    return std::max(t, start_ms_in + compute_ms);
}

WeightStreamer::WeightStreamer(WeightStreamOptions options)
    : options_(std::move(options))
{
    validateStorageTier(options_.tier);
    ST_CHECK(options_.num_readers >= 1, "reader count domain");
    ST_CHECK(options_.chunk_bytes >= 1, "chunk size domain");
}

WeightStreamPlan
WeightStreamer::plan(const ModelArtifact &artifact,
                     double start_ms) const
{
    ST_CHECK(!artifact.layers.empty(), "artifact has no layers");
    ST_CHECK(start_ms >= 0.0, "stream start domain");

    // Task list: every tensor split into chunk_bytes reads, in
    // layer order. One entry per read operation.
    struct Chunk
    {
        int64_t layer;
        int64_t bytes;
    };
    std::vector<Chunk> tasks;
    for (size_t l = 0; l < artifact.layers.size(); ++l) {
        for (const auto &tensor : artifact.layers[l].tensors) {
            ST_CHECK(tensor.bytes >= 1,
                     "manifest tensor must be non-empty");
            int64_t left = tensor.bytes;
            while (left > 0) {
                int64_t take =
                    std::min(left, options_.chunk_bytes);
                tasks.push_back(
                    {static_cast<int64_t>(l), take});
                left -= take;
            }
        }
    }

    // Round-robin assignment over the *active* readers: extra
    // readers beyond the chunk count would neither read nor
    // contend.
    int64_t readers =
        std::min(options_.num_readers,
                 static_cast<int64_t>(tasks.size()));
    int64_t num_tasks = static_cast<int64_t>(tasks.size());

    // Per-reader timelines: reader r services chunks r, r+R, ...
    // sequentially; each completion is a prefix sum of tier chunk
    // times. Pure arithmetic per reader, so fanning the readers
    // out over the shared pool cannot change a single bit.
    std::vector<std::vector<double>> done(
        static_cast<size_t>(readers));
    support::ThreadPool::shared().run(readers, [&](int64_t r) {
        auto &mine = done[static_cast<size_t>(r)];
        double t = start_ms;
        for (int64_t k = r; k < num_tasks; k += readers) {
            t += chunkServiceMs(
                options_.tier,
                tasks[static_cast<size_t>(k)].bytes, readers);
            mine.push_back(t);
        }
    });

    WeightStreamPlan plan;
    plan.model = artifact.model;
    plan.tier = options_.tier.name;
    plan.start_ms = start_ms;
    plan.readers = readers;
    plan.chunks = num_tasks;
    plan.bytes_total = artifact.total_bytes;
    plan.layer_ready_ms.assign(artifact.layers.size(), start_ms);
    for (int64_t k = 0; k < num_tasks; ++k) {
        auto layer =
            static_cast<size_t>(tasks[static_cast<size_t>(k)]
                                    .layer);
        double finished =
            done[static_cast<size_t>(k % readers)]
                [static_cast<size_t>(k / readers)];
        plan.layer_ready_ms[layer] =
            std::max(plan.layer_ready_ms[layer], finished);
    }
    // A layer is usable only with all its predecessors resident:
    // the watermark is the prefix max.
    for (size_t l = 1; l < plan.layer_ready_ms.size(); ++l)
        plan.layer_ready_ms[l] =
            std::max(plan.layer_ready_ms[l],
                     plan.layer_ready_ms[l - 1]);
    plan.end_ms = plan.layer_ready_ms.back();
    return plan;
}

} // namespace serving
} // namespace streamtensor
