/**
 * @file
 * Block-granular paged KV cache pool, the serving-side analogue of
 * vLLM's PagedAttention block manager and TensorRT-LLM's
 * kvCacheManager: physical KV memory is a pool of fixed-size pages
 * (page_tokens KV slots each) that sequences acquire on demand as
 * their context grows, instead of reserving the final context at
 * admission.
 *
 * Three mechanisms on top of the plain pool:
 *
 *  - **Ref-counted prefix sharing.** Pages *fully covered* by a
 *    request's shared prompt prefix are keyed by a hash of
 *    (prefix identity, page index) — the stand-in for hashing the
 *    page's token content, which this simulator does not model —
 *    and looked up in a prefix table. Sequences with a common
 *    system prompt pin one physical copy per prefix page; the page
 *    is freed only when its refcount reaches zero. The page that
 *    straddles the prefix/unique boundary is never shared: each
 *    sequence writes its own tokens into it, i.e. copy-on-write
 *    divergence resolved at page granularity, up front.
 *
 *  - **Retained (cached) prefix pages.** When the last reference
 *    to a prefix page is released, the page is not returned to the
 *    free list but *retained*: a later sequence with the same
 *    prefix revives it as a hit without recomputing its KV.
 *    Retained pages are reclaimed oldest-release-first when an
 *    allocation finds the free list empty, so caching never
 *    refuses an allocation the plain pool could have served.
 *
 *  - **Deterministic accounting.** All orderings derive from page
 *    ids, logical release ticks, and caller-supplied sequence ids
 *    — no wall clock, randomness, or pointer order — so a serving
 *    trace driving the pool replays bit-identically.
 *
 * Every page is in exactly one of three states and the pool
 * maintains `active + cached + free == total` at all times (the
 * conservation invariant the property suite recomputes):
 *
 *    free    never referenced, or released private pages
 *    active  refcount > 0 (held by at least one sequence)
 *    cached  refcount == 0 but retained in the prefix table
 */

#ifndef STREAMTENSOR_SERVING_KV_POOL_H
#define STREAMTENSOR_SERVING_KV_POOL_H

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace streamtensor {
namespace serving {

/** Pool geometry. */
struct KvPoolOptions
{
    /** KV slots per page. */
    int64_t page_tokens = 16;

    /** Physical pages in the pool. */
    int64_t total_pages = 256;
};

/** Cumulative pool statistics (monotone counters). */
struct KvPoolStats
{
    /** Prefix-position pages obtained by reference to an existing
     *  physical page (active or revived from the retained cache)
     *  instead of a fresh allocation. */
    int64_t prefix_hit_pages = 0;

    /** Prefix-position pages that had to be allocated (first
     *  toucher of that prefix page pays for its KV). */
    int64_t prefix_miss_pages = 0;

    /** Retained pages reclaimed to serve allocations. */
    int64_t evicted_cached_pages = 0;

    /** High-water mark of active pages. */
    int64_t peak_active_pages = 0;
};

class KvPool
{
  public:
    explicit KvPool(KvPoolOptions options);

    const KvPoolOptions &options() const { return options_; }
    int64_t pageTokens() const { return options_.page_tokens; }
    int64_t totalPages() const { return options_.total_pages; }

    int64_t freePages() const
    {
        return static_cast<int64_t>(free_.size());
    }
    int64_t cachedPages() const
    {
        return static_cast<int64_t>(cached_lru_.size());
    }
    int64_t activePages() const { return active_pages_; }

    /** Pages an allocation could draw on right now: the free list
     *  plus every reclaimable retained page. */
    int64_t availablePages() const
    {
        return freePages() + cachedPages();
    }

    /** Pages needed to hold @p tokens KV slots (ceiling). */
    int64_t pagesFor(int64_t tokens) const;

    /** Register sequence @p seq_id with a shared prefix: its first
     *  @p prefix_len prompt tokens are the prefix identified by
     *  @p prefix_id (0 = no shared prefix). Must be called before
     *  grow(); the binding holds no pages yet. */
    void bind(int64_t seq_id, int64_t prefix_id,
              int64_t prefix_len);

    /** Fresh allocations grow(@p seq_id, @p tokens) would perform
     *  given the current prefix table — i.e. its page demand net
     *  of prefix hits. Lookup only; admission planning. */
    int64_t missingPages(int64_t seq_id, int64_t tokens) const;

    /** Grow the sequence's coverage to @p tokens. Prefix-position
     *  pages are first looked up in the prefix table (hit: share /
     *  revive); everything else allocates from the free list,
     *  reclaiming retained pages oldest-first when it runs dry.
     *  Atomic: when the fresh allocations cannot all be served the
     *  pool is left untouched and false is returned (the caller
     *  preempts a victim and retries). Never shrinks coverage. */
    bool grow(int64_t seq_id, int64_t tokens);

    /** Release the sequence (completion or preemption): decrement
     *  every held page's refcount. At zero, prefix pages are
     *  retained as cached; private pages return to the free list.
     *  The binding is forgotten. */
    void release(int64_t seq_id);

    /** Pages currently held by @p seq_id (0 when unbound). */
    int64_t heldPages(int64_t seq_id) const;

    /** Tokens currently covered for @p seq_id. */
    int64_t heldTokens(int64_t seq_id) const
    {
        return heldPages(seq_id) * options_.page_tokens;
    }

    const KvPoolStats &stats() const { return stats_; }

    /** Refcount of physical page @p page (property tests). */
    int64_t refCount(int64_t page) const;

    /** Recount every page's state from scratch and panic if the
     *  incremental counters, free list, retained set, or per-page
     *  flags disagree — the conservation audit the property suite
     *  runs after every operation. */
    void validate() const;

  private:
    struct Page
    {
        int64_t ref = 0;

        /** Prefix-table key when this page holds shared prefix
         *  content; 0 for private pages. */
        uint64_t key = 0;

        /** True while retained in cached_lru_. */
        bool cached = false;
    };

    struct Seq
    {
        int64_t prefix_id = 0;
        int64_t prefix_len = 0;

        /** Physical page per logical page position, in order. */
        std::vector<int32_t> pages;
    };

    /** Pop a free page, reclaiming the oldest retained page when
     *  the free list is empty. Caller guarantees availability. */
    int32_t allocPage();

    std::vector<Page> pages_;
    std::vector<int32_t> free_; ///< LIFO
    /** Retained pages by release tick (begin() = oldest). */
    std::map<int64_t, int32_t> cached_lru_;
    /** Prefix-page key -> physical page (active or cached). */
    std::unordered_map<uint64_t, int32_t> prefix_table_;
    std::map<int64_t, Seq> seqs_;
    int64_t active_pages_ = 0;
    int64_t tick_ = 0;
    KvPoolOptions options_;
    KvPoolStats stats_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_KV_POOL_H
