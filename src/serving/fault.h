/**
 * @file
 * Deterministic fault injection for the replicated serving tier.
 *
 * A FaultPlan is a scripted list of timed events against named
 * replicas — crash, recovery, slowdown (step-cost multiplier),
 * inter-die link degradation (cost-model swap), drain — that the
 * FleetScheduler executes at exact simulated instants. Because the
 * plan is data (not callbacks) and all time is simulated, a
 * faulted run replays bit-identically: the golden fleet suite pins
 * availability and tail-latency numbers under a fixed plan.
 *
 * Plans come from two sources: hand-written scripts (tests,
 * examples) and seededFaultPlan(), which draws a plan from a
 * mt19937_64 stream with the same hand-rolled transforms as the
 * trace generators, so a (seed, options) pair produces the
 * identical plan on every platform — the 100-seed fault property
 * suite depends on it.
 *
 * Event semantics are *tolerant*: crashing a replica that is
 * already down, recovering an up one, or un-slowing a nominal one
 * is a no-op. That keeps seeded plans valid by construction and
 * scripted plans composable.
 */

#ifndef STREAMTENSOR_SERVING_FAULT_H
#define STREAMTENSOR_SERVING_FAULT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamtensor {
namespace serving {

/** What happens to a replica at a fault instant. */
enum class FaultKind
{
    /** Hard failure: the in-flight step is abandoned, all resident
     *  and queued requests are evacuated for failover, and every
     *  KV page (including retained prefix pages) is lost. The
     *  replica takes no work until Recover. */
    Crash,

    /** The replica rejoins with fresh serving state (empty pool,
     *  empty queue). Crash already cleared transient degradations;
     *  slow/degrade/drain events landing while the replica was
     *  down still update its knobs, so a recovery inside a
     *  standing slowdown window comes back slow. */
    Recover,

    /** Steps on the replica cost `factor`× their modeled time (a
     *  thermally throttled or contended accelerator). */
    SlowStart,

    /** Back to nominal step cost. */
    SlowEnd,

    /** Inter-die link degradation: the replica's steps are costed
     *  by the degraded cost model the FleetScheduler was built
     *  with (e.g. one compiled against inflated
     *  inter_die_latency_cycles). No-op when the fleet has no
     *  degraded model. */
    DegradeStart,

    /** Back to the nominal cost model. */
    DegradeEnd,

    /** Graceful drain: the replica finishes residents, admits
     *  nothing; its queue is handed back to the fleet for
     *  immediate redistribution (no retry penalty). */
    DrainStart,

    /** Leave drain mode and accept work again. */
    DrainEnd,

    /** Hot model swap: the replica's resident and queued requests
     *  are handed back to the fleet gracefully (no retry attempt
     *  consumed, no backoff — operator-initiated, nothing was
     *  lost), its KV dies with the old weights, and it leaves
     *  service for FleetOptions swap_reload_ms while the new
     *  artifact re-streams from storage. It rejoins automatically
     *  when the reload window elapses — no Recover event needed.
     *  No-op on a replica that is down (or mid-reload). */
    Swap,
};

/** Stable lower-case name (logs, bench labels, test messages). */
const char *faultKindName(FaultKind kind);

/** One scripted fault. */
struct FaultEvent
{
    /** Simulated instant the event fires. */
    double at_ms = 0.0;

    /** Target replica id in [0, num_replicas). */
    int replica = 0;

    FaultKind kind = FaultKind::Crash;

    /** Step-cost multiplier for SlowStart (> 1 degrades); ignored
     *  by every other kind. */
    double factor = 1.0;
};

/** A scripted fault schedule. Events need not be sorted; the
 *  injector orders them by at_ms, keeping authoring order at equal
 *  instants (so a script can express "crash 0 then drain 1 at
 *  t=100" unambiguously). */
struct FaultPlan
{
    std::vector<FaultEvent> events;
};

/** Knobs of seededFaultPlan(). Probabilities are per replica. */
struct SeededFaultOptions
{
    uint64_t seed = 1;
    int num_replicas = 2;

    /** Plan horizon; fault windows are drawn inside it. */
    double horizon_ms = 1000.0;

    /** Chance a replica crashes once (with a later recovery drawn
     *  inside the horizon). */
    double crash_prob = 0.5;

    /** Chance of one slowdown window (factor in
     *  [min_slow_factor, max_slow_factor]). */
    double slow_prob = 0.5;

    /** Chance of one graceful drain window. */
    double drain_prob = 0.25;

    /** Chance of one link-degradation window (only meaningful when
     *  the fleet has a degraded cost model). */
    double degrade_prob = 0.0;

    double min_slow_factor = 1.5;
    double max_slow_factor = 4.0;
};

/** Draw a fault plan from a seeded stream: per replica, in id
 *  order, at most one crash/recover window, one slowdown window,
 *  one drain window, and one degradation window inside the
 *  horizon. Deterministic and platform-portable for a given
 *  (seed, options). */
FaultPlan seededFaultPlan(const SeededFaultOptions &options);

/** Cursor over a FaultPlan in firing order. */
class FaultInjector
{
  public:
    /** Sorts the plan by at_ms (stable: authoring order breaks
     *  ties) and validates non-negative times and replica ids. */
    explicit FaultInjector(FaultPlan plan);

    bool exhausted() const { return next_ == events_.size(); }

    /** Firing time of the next event; +infinity when exhausted. */
    double nextAtMs() const;

    /** Pop every event with at_ms <= now, in firing order. */
    std::vector<FaultEvent> drainDue(double now);

  private:
    std::vector<FaultEvent> events_;
    size_t next_ = 0;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_FAULT_H
