/**
 * @file
 * Weight streaming: the storage→HBM leg of a cold start, crash
 * recovery, or hot model swap.
 *
 * A ModelArtifact is the per-layer tensor manifest of one model —
 * derived from models::LlmConfig exactly the way the executor's
 * block builder sizes its weights (Wq/Wk/Wv/Wo, the FFN matrices,
 * the norms, all at the config's packed weight dtype) — so
 * `total_bytes` equals LlmConfig::totalParamBytes().
 *
 * The WeightStreamer turns an artifact plus a StorageTierProfile
 * into a WeightStreamPlan on the simulated clock, with the
 * reader/assigner/task architecture of real model streamers:
 *
 *   - *tasks*: each tensor is split into fixed-size chunks, listed
 *     in layer order — the unit of one storage read;
 *   - *assigner*: chunk k goes to reader k mod num_readers — a
 *     fixed round-robin, so the assignment is a pure function of
 *     the manifest and the options, never of thread scheduling;
 *   - *readers*: each reader services its chunks sequentially;
 *     per-chunk time comes from chunkServiceMs (storage_tier.h)
 *     with all readers contending for the tier.
 *
 * The per-reader timelines are *computed* on support::ThreadPool
 * (each reader's completions are an independent prefix sum), but
 * every completion instant is pure arithmetic over the options —
 * the pool only parallelises the computation, so plans are
 * bit-identical across reruns and pool sizes. The merged result is
 * the per-layer ready watermark: layer_ready_ms[l] is the instant
 * every chunk of layers 0..l has landed in HBM, which is what
 * gates a block trigger during a streamed cold start (a layer may
 * fire once its weights — and its predecessors' — are resident).
 */

#ifndef STREAMTENSOR_SERVING_WEIGHTS_H
#define STREAMTENSOR_SERVING_WEIGHTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "models/llm_config.h"
#include "serving/storage_tier.h"

namespace streamtensor {
namespace serving {

/** One named weight tensor of a layer. */
struct WeightTensor
{
    std::string name;
    int64_t bytes = 0;
};

/** All weight tensors of one transformer layer. */
struct LayerManifest
{
    std::vector<WeightTensor> tensors;

    /** Σ tensor bytes (== LlmConfig::blockParamBytes()). */
    int64_t bytes = 0;
};

/** Per-layer tensor manifest of one model's packed weights. */
struct ModelArtifact
{
    std::string model;
    std::vector<LayerManifest> layers;

    /** Σ layer bytes (== LlmConfig::totalParamBytes()). */
    int64_t total_bytes = 0;

    /** Build the manifest from a model config: per layer, the
     *  attention projections (Wq, Wk, Wv, Wo), the FFN matrices
     *  (fc1/fc2, or gate/up/down under SiLU), and the two norm
     *  vectors, each packed at config.weight_dtype. */
    static ModelArtifact fromConfig(const models::LlmConfig &config);
};

/** WeightStreamer knobs. */
struct WeightStreamOptions
{
    StorageTierProfile tier = gp3Tier();

    /** Concurrent read streams against the tier. More readers
     *  divide the aggregate bandwidth but beat the per-stream
     *  ceiling and hide first-byte latency — the lever that makes
     *  S3-class tiers usable at all. */
    int64_t num_readers = 8;

    /** Bytes per read operation (tensors split into chunks of
     *  this size; the last chunk of a tensor may be smaller). */
    int64_t chunk_bytes = 2 * 1024 * 1024;
};

/** The simulated outcome of streaming one artifact: when each
 *  layer's weights are resident, and when the stream finishes.
 *  A default-constructed plan is the "warm start" sentinel
 *  (empty() — no gating anywhere). */
struct WeightStreamPlan
{
    std::string model;
    std::string tier;

    /** Instant the stream was issued. */
    double start_ms = 0.0;

    /** Instant the last chunk landed in HBM. */
    double end_ms = 0.0;

    /** Per-layer ready watermark: layer_ready_ms[l] is the
     *  instant layers 0..l are fully resident (non-decreasing;
     *  back() == end_ms). */
    std::vector<double> layer_ready_ms;

    int64_t bytes_total = 0;
    int64_t chunks = 0;
    int64_t readers = 0;

    bool empty() const { return layer_ready_ms.empty(); }

    double streamMs() const { return end_ms - start_ms; }

    /** End instant of a compute pass of @p compute_ms starting at
     *  @p start_ms_in, gated on this plan's residency. With
     *  @p overlap, the pass is split evenly across the plan's
     *  layers and layer l fires at
     *  max(previous layer's end, layer_ready_ms[l]) — compute
     *  overlaps the stream, paying only for layers that outrun
     *  their weights. Without overlap, the whole pass waits for
     *  end_ms. Either way the result is >= start + compute, and
     *  exactly start + compute once the stream has finished. An
     *  empty plan gates nothing. */
    double gatedComputeEndMs(double start_ms_in, double compute_ms,
                             bool overlap) const;
};

/** Plans weight streams for one (tier, readers, chunking)
 *  configuration. Stateless and reusable across artifacts. */
class WeightStreamer
{
  public:
    explicit WeightStreamer(WeightStreamOptions options = {});

    const WeightStreamOptions &options() const { return options_; }

    /** Stream @p artifact starting at @p start_ms: chunk every
     *  tensor, assign chunks round-robin to readers, service each
     *  reader's chunks sequentially at the tier's chunk time, and
     *  merge the completions into the per-layer watermark.
     *  Deterministic — bit-identical across reruns and thread
     *  counts (see the file header). */
    WeightStreamPlan plan(const ModelArtifact &artifact,
                          double start_ms = 0.0) const;

  private:
    WeightStreamOptions options_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_WEIGHTS_H
