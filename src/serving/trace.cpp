#include "serving/trace.h"

#include <cmath>
#include <random>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** Uniform double in [0, 1) from the top 53 bits (the standard
 *  fixes mt19937_64's output bit-exactly; the transform here is
 *  ours, so it is portable too). */
double
uniform01(std::mt19937_64 &rng)
{
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/** Exponential with the given mean (inverse-CDF transform). */
double
exponential(std::mt19937_64 &rng, double mean)
{
    return -mean * std::log1p(-uniform01(rng));
}

/** Uniform integer in [lo, hi]. Modulo bias is irrelevant at
 *  trace-generation scale and keeps the mapping trivially
 *  portable. */
int64_t
uniformInt(std::mt19937_64 &rng, int64_t lo, int64_t hi)
{
    return lo + static_cast<int64_t>(
                    rng() % static_cast<uint64_t>(hi - lo + 1));
}

void
checkOptions(const TraceOptions &o)
{
    ST_CHECK(o.num_requests >= 1, "trace needs requests");
    ST_CHECK(o.mean_interarrival_ms > 0.0,
             "mean inter-arrival must be positive");
    ST_CHECK(o.min_input_len >= 1 &&
                 o.max_input_len >= o.min_input_len,
             "malformed input length range");
    ST_CHECK(o.min_output_len >= 1 &&
                 o.max_output_len >= o.min_output_len,
             "malformed output length range");
    ST_CHECK(o.num_priorities >= 1, "need a priority class");
    ST_CHECK(o.num_prefix_groups >= 0, "prefix group domain");
    ST_CHECK(o.num_prefix_groups == 0 || o.shared_prefix_len >= 1,
             "prefix groups need a shared prefix length");
    ST_CHECK(o.deadline_slack_ms >= 0.0, "deadline slack domain");
}

Request
drawRequest(std::mt19937_64 &rng, const TraceOptions &o,
            int64_t id, double arrival_ms)
{
    Request r;
    r.id = id;
    r.arrival_ms = arrival_ms;
    r.input_len = uniformInt(rng, o.min_input_len, o.max_input_len);
    r.output_len =
        uniformInt(rng, o.min_output_len, o.max_output_len);
    r.priority = static_cast<int>(
        uniformInt(rng, 0, o.num_priorities - 1));
    // Prefix draws come last so disabling them (the default)
    // leaves the whole trace bit-identical to older generators.
    if (o.num_prefix_groups > 0) {
        r.prefix_id = uniformInt(rng, 1, o.num_prefix_groups);
        r.prefix_len = o.shared_prefix_len;
        r.input_len += o.shared_prefix_len;
    }
    // Deadlines consume no randomness, so enabling them leaves
    // every drawn field identical.
    if (o.deadline_slack_ms > 0.0)
        r.deadline_ms = arrival_ms + o.deadline_slack_ms;
    return r;
}

/** Materialize a whole generator — the vector builders are
 *  take-all loops over the lazy form, so the two can never drift
 *  apart. */
std::vector<Request>
takeAll(TraceGenerator generator)
{
    std::vector<Request> trace;
    trace.reserve(
        static_cast<size_t>(generator.options().num_requests));
    while (!generator.exhausted())
        trace.push_back(generator.next());
    return trace;
}

} // namespace

TraceGenerator::TraceGenerator(TraceShape shape,
                               const TraceOptions &options)
    : shape_(shape), options_(options), rng_(options.seed)
{
    checkOptions(options_);
    if (shape_ == TraceShape::Bursty)
        ST_CHECK(options_.burst_period_ms > 0.0 &&
                     options_.burst_duty > 0.0 &&
                     options_.burst_duty < 1.0 &&
                     options_.burst_factor >= 1.0,
                 "malformed burst shape");
}

void
TraceGenerator::stage()
{
    ST_ASSERT(emitted_ < options_.num_requests,
              "TraceGenerator drawn past its trace");
    double mean = options_.mean_interarrival_ms;
    if (shape_ == TraceShape::Bursty) {
        double burst_end =
            options_.burst_period_ms * options_.burst_duty;
        double phase = std::fmod(now_, options_.burst_period_ms);
        if (phase < burst_end)
            mean /= options_.burst_factor;
    }
    now_ += exponential(rng_, mean);
    staged_request_ =
        drawRequest(rng_, options_, emitted_, now_);
    ++emitted_;
    staged_ = true;
}

const Request &
TraceGenerator::peek()
{
    ST_CHECK(!exhausted(), "peek() on an exhausted generator");
    if (!staged_)
        stage();
    return staged_request_;
}

Request
TraceGenerator::next()
{
    ST_CHECK(!exhausted(), "next() on an exhausted generator");
    if (!staged_)
        stage();
    staged_ = false;
    return staged_request_;
}

std::vector<Request>
poissonTrace(const TraceOptions &options)
{
    return takeAll(TraceGenerator(TraceShape::Poisson, options));
}

std::vector<Request>
burstyTrace(const TraceOptions &options)
{
    return takeAll(TraceGenerator(TraceShape::Bursty, options));
}

} // namespace serving
} // namespace streamtensor
