#include "serving/cost_model.h"

#include <algorithm>

namespace streamtensor {
namespace serving {

double
ExecutorCostModel::stepMs(
    const std::vector<runtime::StepGroup> &groups)
{
    runtime::StepResult step = executor_.step(groups);
    saw_deadlock_ = saw_deadlock_ || step.deadlock;
    last_crossings_ = step.crossings;
    crossing_stall_ms_ += step.crossing_stall_ms;
    peak_kv_tokens_ = std::max(peak_kv_tokens_, step.kv_tokens);
    return step.step_ms;
}

double
AnalyticCostModel::stepMs(
    const std::vector<runtime::StepGroup> &groups)
{
    double ms = 0.0;
    for (const auto &g : groups) {
        double per_seq =
            options_.per_seq_ms +
            options_.per_query_token_ms *
                static_cast<double>(g.shapes.seq_len) +
            options_.per_kv_token_ms *
                static_cast<double>(g.shapes.kv_len);
        ms += options_.trigger_ms +
              static_cast<double>(g.count) * per_seq;
    }
    return ms;
}

} // namespace serving
} // namespace streamtensor
