/**
 * @file
 * Continuous-batching serving scheduler: a discrete-event
 * simulator that drives an accelerator cost model with batched
 * engine steps, the serving-side counterpart of the paper's
 * single-request re-triggered block (§6.1).
 *
 * Model, in vLLM/Orca terms with dataflow-accelerator constraints:
 *  - Iteration-level (continuous) batching: every step runs all
 *    resident sequences; new requests join at the next step
 *    boundary as prefill members — no waiting for the batch to
 *    drain.
 *  - Bucketed shapes: batch members are grouped by their bucketed
 *    BlockShapes (models::BucketPolicy) so the compile cache stays
 *    small; each group is one accelerator trigger per layer whose
 *    members stream back-to-back with weights resident.
 *  - Conservative KV admission: a request reserves its *final*
 *    bucketed context (input + output) when it joins the batch and
 *    holds it until completion — no mid-flight preemption, so
 *    every admitted request runs to completion and the KV
 *    invariant is a simple sum bound.
 *  - Strict head-of-line admission: the queue's best request (by
 *    priority class, FIFO within class) is admitted or nothing is
 *    — later smaller requests never jump a blocked head, which
 *    makes FIFO fairness exact and starvation impossible *within
 *    a priority class*. Across classes the policy is strict
 *    priority: sustained higher-class traffic can hold back lower
 *    classes indefinitely, by design.
 *
 * All time is simulated milliseconds; the scheduler contains no
 * wall-clock, randomness, or pointer-order dependence, so a trace
 * replays to bit-identical step compositions and metrics.
 */

#ifndef STREAMTENSOR_SERVING_SCHEDULER_H
#define STREAMTENSOR_SERVING_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "models/bucketing.h"
#include "runtime/executor.h"
#include "serving/metrics.h"
#include "serving/queue.h"
#include "serving/request.h"

namespace streamtensor {
namespace serving {

/** Cost oracle for one engine step. Implementations must be
 *  deterministic pure functions of the shape groups (the replay
 *  suite depends on it) and must return a strictly positive
 *  cost so simulated time advances. */
class StepCostModel
{
  public:
    virtual ~StepCostModel() = default;

    /** Cost in milliseconds of one full model pass over the given
     *  shape groups. */
    virtual double
    stepMs(const std::vector<runtime::StepGroup> &groups) = 0;
};

/** Scheduler knobs. */
struct SchedulerOptions
{
    /** Max sequences resident in one step. */
    int64_t max_batch = 8;

    /** Total KV tokens the accelerator can hold. Each admitted
     *  request reserves bucketLen(input + output) until it
     *  finishes. */
    int64_t kv_budget_tokens = 4096;

    /** Request-queue capacity; arrivals beyond it are rejected
     *  (0 = unbounded). */
    int64_t max_queue_depth = 0;

    /** Shape quantisation shared with the compile cache. */
    models::BucketPolicy buckets;

    /** Record per-step composition (replay tests, debugging). */
    bool record_steps = false;

    /** Safety valve against a miscosted model wedging the event
     *  loop; a run hitting it reports hit_step_limit. */
    int64_t max_steps = 1 << 22;
};

/** Composition of one executed step (record_steps only). */
struct StepRecord
{
    double start_ms = 0.0;
    double step_ms = 0.0;

    /** Requests that ran their prefill in this step, in admission
     *  order. */
    std::vector<int64_t> prefill_ids;

    /** Requests that decoded one token in this step. */
    std::vector<int64_t> decode_ids;

    /** KV tokens reserved across the batch during this step. */
    int64_t kv_reserved = 0;

    /** Queued requests left behind when the step launched. */
    int64_t queue_depth = 0;
};

/** A rejected request and why. */
struct RejectedRequest
{
    int64_t id = 0;
    RejectReason reason = RejectReason::QueueFull;
};

/** Outcome of serving one trace. */
struct ServingResult
{
    ServingMetrics metrics;
    std::vector<StepRecord> steps; ///< empty unless record_steps
    std::vector<RejectedRequest> rejected;
    bool hit_step_limit = false;
};

class Scheduler
{
  public:
    /** @p cost must outlive the scheduler. */
    Scheduler(SchedulerOptions options, StepCostModel &cost);

    const SchedulerOptions &options() const { return options_; }

    /** Serve @p trace to completion (ids must be unique). The
     *  trace need not be sorted; it is served in (arrival, id)
     *  order. */
    ServingResult run(std::vector<Request> trace);

  private:
    SchedulerOptions options_;
    StepCostModel &cost_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_SCHEDULER_H
