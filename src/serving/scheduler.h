/**
 * @file
 * Continuous-batching serving scheduler: a discrete-event
 * simulator that drives an accelerator cost model with batched
 * engine steps, the serving-side counterpart of the paper's
 * single-request re-triggered block (§6.1).
 *
 * Model, in vLLM/Orca terms with dataflow-accelerator constraints:
 *  - Iteration-level (continuous) batching: every step runs all
 *    resident sequences; new requests join at the next step
 *    boundary as prefill members — no waiting for the batch to
 *    drain.
 *  - Bucketed shapes: batch members are grouped by their bucketed
 *    BlockShapes (models::BucketPolicy) so the compile cache stays
 *    small; each group is one accelerator trigger per layer whose
 *    members stream back-to-back with weights resident.
 *  - KV admission, two policies (KvAdmission):
 *      * Paged (default): the KV budget is a serving::KvPool of
 *        fixed-size pages. A request is admitted when its
 *        *current* context fits, acquires pages on demand as it
 *        decodes, and shares prefix pages with other requests
 *        naming the same prompt prefix. On allocation pressure a
 *        resident sequence is preempted back to the queue
 *        (lowest priority class first, then most recently
 *        admitted) and recomputes its KV when readmitted.
 *      * Reserve: the PR-4 conservative baseline — a request
 *        reserves its *final* bucketed context at admission and
 *        holds it to completion; no preemption ever. Kept as the
 *        measurable before/after comparison point.
 *  - Strict head-of-line admission: the queue's best request (by
 *    priority class, FIFO within class) is admitted or nothing is
 *    — later smaller requests never jump a blocked head, which
 *    makes FIFO fairness exact and starvation impossible *within
 *    a priority class*. Across classes the policy is strict
 *    priority: sustained higher-class traffic can hold back lower
 *    classes indefinitely, by design. Preempted requests re-enter
 *    at the front of their class (their arrival precedes
 *    everything still queued there).
 *
 * **Context-length convention.** A sequence that has produced
 * `g` output tokens and runs one more step attends over
 * `input_len + g` tokens: the prompt (input_len), the g - 1
 * previously cached output tokens, and the current query token,
 * whose KV slot is written during the step. That expression is
 * used uniformly for decode shapes, recompute-prefill shapes, and
 * page demand; the maximum context of a request's lifetime is
 * therefore `input_len + output_len - 1` (its last decode step).
 * The previous `input_len + generated + 1` convention over-counted
 * by one and pushed sequences into the next shape bucket one step
 * early at exact bucket boundaries, splitting their step group and
 * costing a spurious compile (regression-tested at a boundary).
 *
 * All time is simulated milliseconds; the scheduler contains no
 * wall-clock, randomness, or pointer-order dependence, so a trace
 * replays to bit-identical step compositions and metrics.
 */

#ifndef STREAMTENSOR_SERVING_SCHEDULER_H
#define STREAMTENSOR_SERVING_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "models/bucketing.h"
#include "runtime/executor.h"
#include "serving/kv_pool.h"
#include "serving/metrics.h"
#include "serving/queue.h"
#include "serving/request.h"
#include "serving/weights.h"

namespace streamtensor {
namespace serving {

class ArrivalCursor;
class TraceGenerator;

/** Cost oracle for one engine step. Implementations must be
 *  deterministic pure functions of the shape groups (the replay
 *  suite depends on it) and must return a strictly positive
 *  cost so simulated time advances. */
class StepCostModel
{
  public:
    virtual ~StepCostModel() = default;

    /** Cost in milliseconds of one full model pass over the given
     *  shape groups. */
    virtual double
    stepMs(const std::vector<runtime::StepGroup> &groups) = 0;

    /** True when concurrent stepMs() calls are safe AND
     *  order-independent — a pure function of the groups, with no
     *  mutable state whose update order could leak into results.
     *  Gates the fleet's parallel step launching
     *  (FleetOptions::step_threads): a model accumulating
     *  floating-point state (e.g. ExecutorCostModel's crossing
     *  stall sum) must keep the default false, or reordered
     *  accumulation would break bit-identical replay. */
    virtual bool concurrentSafe() const { return false; }
};

/** How the scheduler charges requests against the KV budget. */
enum class KvAdmission
{
    /** Block-granular paged pool: admit on current need, grow on
     *  demand, preempt under pressure, share prefixes. */
    Paged,

    /** Conservative full reservation of the final bucketed
     *  context; never preempts (the PR-4 baseline). */
    Reserve,
};

/** Cold-start weight streaming (weights.h). With a non-empty
 *  plan, the engine's weights are still in flight from storage
 *  when serving begins: every step launched before the plan's
 *  end_ms is gated on residency —
 *
 *   - overlap (default): the step's compute is spread across the
 *     plan's layers and each layer fires at
 *     max(previous layer's end, its ready watermark), so first
 *     prefills overlap the stream and only layers that outrun
 *     their weights stall (WeightStreamPlan::gatedComputeEndMs);
 *   - !overlap: the whole step waits for end_ms — the
 *     load-then-serve baseline the bench compares against.
 *
 *  The added wait lands in StepRecord::weights_wait_ms and
 *  accumulates into ServingMetrics::weight_stall_ms; steps
 *  launched after end_ms are untouched, so a warm run and an
 *  empty plan are bit-identical. */
struct ColdStartOptions
{
    WeightStreamPlan plan; ///< empty = warm start
    bool overlap = true;
};

/** Scheduler knobs. */
struct SchedulerOptions
{
    /** Max sequences resident in one step. */
    int64_t max_batch = 8;

    /** Total KV tokens the accelerator can hold. Under Paged
     *  admission this is carved into kv_budget_tokens /
     *  page_tokens physical pages; under Reserve each admitted
     *  request holds bucketLen(max context) of it to
     *  completion. */
    int64_t kv_budget_tokens = 4096;

    /** KV admission policy. */
    KvAdmission admission = KvAdmission::Paged;

    /** Page size of the paged pool (Paged only). */
    int64_t page_tokens = 16;

    /** Request-queue capacity; arrivals beyond it are rejected
     *  (0 = unbounded). Preempted requests re-enter exempt from
     *  the bound. */
    int64_t max_queue_depth = 0;

    /** Shape quantisation shared with the compile cache. */
    models::BucketPolicy buckets;

    /** Record per-step composition (replay tests, debugging). */
    bool record_steps = false;

    /** Per-request record retention (metrics.h): full records by
     *  default up to MetricsOptions::auto_record_limit
     *  completions, streaming sketches beyond. */
    MetricsOptions metrics;

    /** Safety valve against a miscosted model wedging the event
     *  loop; a run hitting it reports hit_step_limit. */
    int64_t max_steps = 1 << 22;

    /** Simulated time at which the scheduler enters drain mode;
     *  negative = never. From the first event-loop iteration at or
     *  after this instant, every queued request is shed as
     *  RejectReason::Drained, later arrivals are rejected Drained
     *  on ingest, and resident sequences run to completion.
     *
     *  **Interaction of drain, deadlines, and hit_step_limit.**
     *  The three stopping mechanisms are ordered and independent:
     *
     *   - *Deadlines* (Request::deadline_ms) shed individual
     *     *queued* requests whose deadline has passed — swept at
     *     every loop iteration *before* admission, and checked at
     *     ingest. Resident sequences are never expired; one that
     *     finishes late counts a deadline_miss instead. Deadline
     *     expiry keeps firing while draining (a request can be
     *     Drained or DeadlineExpired, whichever trips first; each
     *     is counted exactly once).
     *
     *   - *Drain* is a scheduler-wide admission freeze: residents
     *     finish, nothing new is admitted, the queue empties
     *     immediately. A drained run therefore terminates after at
     *     most the residents' remaining steps — drain can never
     *     wedge the loop.
     *
     *   - *hit_step_limit* (max_steps) is the safety valve above
     *     both: it bounds executed steps regardless of drain or
     *     deadlines. A run that drains cleanly ends with
     *     hit_step_limit == false even when draining shed every
     *     queued request; hit_step_limit == true means the cost
     *     model or workload kept residents alive past the budget —
     *     in_flight may then be nonzero even while draining.
     *
     *  Pinned by Scheduler.DrainDeadlineStepLimitInteraction. */
    double drain_at_ms = -1.0;

    /** Cold-start weight streaming (empty plan = warm start). */
    ColdStartOptions cold_start;
};

/** Composition of one executed step (record_steps only). */
struct StepRecord
{
    double start_ms = 0.0;
    double step_ms = 0.0;

    /** Time this step spent waiting on weight residency during a
     *  cold start (already included in step_ms; 0 once the stream
     *  has finished, and on every warm run). */
    double weights_wait_ms = 0.0;

    /** Requests that ran a prefill-shaped pass in this step, in
     *  admission order: first-time prefills and recompute
     *  prefills of readmitted preempted sequences. */
    std::vector<int64_t> prefill_ids;

    /** Requests that decoded one token in this step. */
    std::vector<int64_t> decode_ids;

    /** Sequences preempted while making room for this step, in
     *  preemption order (Paged only). */
    std::vector<int64_t> preempted_ids;

    /** KV tokens the batch holds during this step: the sum of
     *  bucketed reservations (Reserve) or active pages ×
     *  page_tokens (Paged). */
    int64_t kv_reserved = 0;

    /** Pool occupancy when the step launched (Paged only;
     *  pages_active + pages_cached + pages_free == pool pages,
     *  recomputed by the property suite). */
    int64_t pages_active = 0;
    int64_t pages_cached = 0;
    int64_t pages_free = 0;

    /** Queued requests left behind when the step launched. */
    int64_t queue_depth = 0;
};

/** A rejected request and why. Rejections land in (arrival, id)
 *  order regardless of how arrivals were batched into ingest
 *  rounds. */
struct RejectedRequest
{
    int64_t id = 0;
    double arrival_ms = 0.0;
    RejectReason reason = RejectReason::QueueFull;

    /** Simulated time the rejection was decided: ingest time for
     *  TooLong/QueueFull/Drained arrivals, the expiry sweep for
     *  DeadlineExpired, drain entry for a shed queue. */
    double at_ms = 0.0;
};

/** Outcome of serving one trace. */
struct ServingResult
{
    ServingMetrics metrics;
    std::vector<StepRecord> steps; ///< empty unless record_steps
    std::vector<RejectedRequest> rejected;
    bool hit_step_limit = false;
};

class Scheduler
{
  public:
    /** @p cost must outlive the scheduler. */
    Scheduler(SchedulerOptions options, StepCostModel &cost);

    const SchedulerOptions &options() const { return options_; }

    /** Serve @p trace to completion (ids must be unique). The
     *  trace need not be sorted; it is served in (arrival, id)
     *  order. */
    ServingResult run(std::vector<Request> trace);

    /** Serve a lazy trace without materializing it — bit-identical
     *  to run(vector-of-the-same-generator) but O(1) trace memory.
     *  The generator's stream is sorted and valid by construction
     *  (trace.h), so no sort/validate pass runs. */
    ServingResult run(TraceGenerator &trace);

  private:
    ServingResult runCursor(ArrivalCursor &arrivals);

    SchedulerOptions options_;
    StepCostModel &cost_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_SCHEDULER_H
