#include "serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** The documented sentinel of the ServingMetrics percentile
 *  accessors on an empty window. */
double
quietNan()
{
    return std::numeric_limits<double>::quiet_NaN();
}

} // namespace

std::optional<double>
percentile(std::vector<double> values, double p)
{
    std::sort(values.begin(), values.end());
    return percentileOfSorted(values, p);
}

std::optional<double>
percentileOfSorted(const std::vector<double> &sorted, double p)
{
    ST_CHECK(p >= 0.0 && p <= 100.0, "percentile domain");
    if (sorted.empty())
        return std::nullopt;
    // Nearest rank: smallest value with at least p% of the sample
    // at or below it.
    auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<int64_t>(std::ceil(p / 100.0 * n));
    rank = std::max<int64_t>(rank, 1);
    return sorted[static_cast<size_t>(rank - 1)];
}

void
ServingMetrics::recordCompletion(const RequestMetrics &done,
                                 const MetricsOptions &options)
{
    ++record_revision_; // every completion invalidates the caches
    ++completed;
    total_output_tokens += done.output_len;
    if (done.missedDeadline())
        ++deadline_misses;

    latency_sketch.add(done.latencyMs());
    ttft_sketch.add(done.ttftMs());
    ttft_sum_ms += done.ttftMs();
    // The decode-window sum mirrors tbtMeanMs()'s invariant: a
    // single-token request must have an empty window.
    ST_ASSERT(done.output_len > 1 ||
                  done.finish_ms == done.first_token_ms,
              "single-token request with a decode window");
    decode_sum_ms += done.finish_ms - done.first_token_ms;
    decode_gaps += done.output_len - 1;

    switch (options.keep_records) {
    case MetricsOptions::KeepRecords::Always:
        requests.push_back(done);
        break;
    case MetricsOptions::KeepRecords::Never:
        records_complete = false;
        break;
    case MetricsOptions::KeepRecords::Auto:
        if (completed <= options.auto_record_limit) {
            requests.push_back(done);
        } else if (records_complete) {
            // Crossing the limit: drop everything, not just the
            // overflow — a truncated vector would read as a valid
            // (but silently biased) sample.
            records_complete = false;
            requests.clear();
            requests.shrink_to_fit();
        }
        break;
    }
}

double
ServingMetrics::requestsPerSecond() const
{
    return makespan_ms > 0.0 ? completed / makespan_ms * 1e3 : 0.0;
}

double
ServingMetrics::tokensPerSecond() const
{
    return makespan_ms > 0.0
               ? total_output_tokens / makespan_ms * 1e3
               : 0.0;
}

double
ServingMetrics::utilization() const
{
    return makespan_ms > 0.0 ? busy_ms / makespan_ms : 0.0;
}

double
ServingMetrics::meanBatchSize() const
{
    return steps > 0 ? static_cast<double>(total_batched_seqs) /
                           static_cast<double>(steps)
                     : 0.0;
}

double
ServingMetrics::ttftMeanMs() const
{
    // The exact record loop is kept while records are complete so
    // results stay bit-identical to the pre-streaming accessors
    // (same floating-point summation order); the running sum only
    // answers when the records are gone.
    if (!records_complete)
        return completed > 0
                   ? ttft_sum_ms / static_cast<double>(completed)
                   : 0.0;
    if (requests.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : requests)
        sum += r.ttftMs();
    return sum / static_cast<double>(requests.size());
}

double
ServingMetrics::ttftP95Ms() const
{
    if (!records_complete)
        return ttft_sketch.quantile(95.0).value_or(quietNan());
    std::pair<int64_t, int64_t> key{
        record_revision_, static_cast<int64_t>(requests.size())};
    if (sorted_ttfts_key_ != key) {
        sorted_ttfts_.clear();
        sorted_ttfts_.reserve(requests.size());
        for (const auto &r : requests)
            sorted_ttfts_.push_back(r.ttftMs());
        std::sort(sorted_ttfts_.begin(), sorted_ttfts_.end());
        sorted_ttfts_key_ = key;
    }
    return percentileOfSorted(sorted_ttfts_, 95.0)
        .value_or(quietNan());
}

double
ServingMetrics::pageUtilization() const
{
    return steps > 0 && pool_pages > 0
               ? static_cast<double>(page_step_sum) /
                     (static_cast<double>(steps) *
                      static_cast<double>(pool_pages))
               : 0.0;
}

double
ServingMetrics::prefixHitRate() const
{
    int64_t touched = prefix_hit_pages + prefix_miss_pages;
    return touched > 0 ? static_cast<double>(prefix_hit_pages) /
                             static_cast<double>(touched)
                       : 0.0;
}

double
ServingMetrics::tbtMeanMs() const
{
    if (!records_complete)
        return decode_gaps > 0
                   ? decode_sum_ms /
                         static_cast<double>(decode_gaps)
                   : 0.0;
    double decode_ms = 0.0;
    int64_t gaps = 0;
    for (const auto &r : requests) {
        // A single-token request has zero decode gaps, so a
        // nonzero decode window would silently inflate the mean
        // of every other request. Such a window is impossible by
        // construction (the request finishes at its prefill
        // step); make the impossibility loud.
        ST_ASSERT(r.output_len > 1 ||
                      r.finish_ms == r.first_token_ms,
                  "single-token request with a decode window");
        decode_ms += r.finish_ms - r.first_token_ms;
        gaps += r.output_len - 1;
    }
    return gaps > 0 ? decode_ms / static_cast<double>(gaps) : 0.0;
}

double
ServingMetrics::latencyPercentileMs(double p) const
{
    if (!records_complete)
        return latency_sketch.quantile(p).value_or(quietNan());
    std::pair<int64_t, int64_t> key{
        record_revision_, static_cast<int64_t>(requests.size())};
    if (sorted_latencies_key_ != key) {
        sorted_latencies_.clear();
        sorted_latencies_.reserve(requests.size());
        for (const auto &r : requests)
            sorted_latencies_.push_back(r.latencyMs());
        std::sort(sorted_latencies_.begin(),
                  sorted_latencies_.end());
        sorted_latencies_key_ = key;
    }
    return percentileOfSorted(sorted_latencies_, p)
        .value_or(quietNan());
}

double
ServingMetrics::weightOverlapFraction() const
{
    if (weight_stream_ms <= 0.0)
        return 1.0;
    return std::clamp(1.0 - weight_stall_ms / weight_stream_ms,
                      0.0, 1.0);
}

} // namespace serving
} // namespace streamtensor
