#include "serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** The documented sentinel of the ServingMetrics percentile
 *  accessors on an empty window. */
double
quietNan()
{
    return std::numeric_limits<double>::quiet_NaN();
}

} // namespace

std::optional<double>
percentile(std::vector<double> values, double p)
{
    ST_CHECK(p >= 0.0 && p <= 100.0, "percentile domain");
    if (values.empty())
        return std::nullopt;
    std::sort(values.begin(), values.end());
    // Nearest rank: smallest value with at least p% of the sample
    // at or below it.
    auto n = static_cast<double>(values.size());
    auto rank = static_cast<int64_t>(std::ceil(p / 100.0 * n));
    rank = std::max<int64_t>(rank, 1);
    return values[static_cast<size_t>(rank - 1)];
}

double
ServingMetrics::requestsPerSecond() const
{
    return makespan_ms > 0.0 ? completed / makespan_ms * 1e3 : 0.0;
}

double
ServingMetrics::tokensPerSecond() const
{
    return makespan_ms > 0.0
               ? total_output_tokens / makespan_ms * 1e3
               : 0.0;
}

double
ServingMetrics::utilization() const
{
    return makespan_ms > 0.0 ? busy_ms / makespan_ms : 0.0;
}

double
ServingMetrics::meanBatchSize() const
{
    return steps > 0 ? static_cast<double>(total_batched_seqs) /
                           static_cast<double>(steps)
                     : 0.0;
}

double
ServingMetrics::ttftMeanMs() const
{
    if (requests.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : requests)
        sum += r.ttftMs();
    return sum / static_cast<double>(requests.size());
}

double
ServingMetrics::ttftP95Ms() const
{
    std::vector<double> ttfts;
    ttfts.reserve(requests.size());
    for (const auto &r : requests)
        ttfts.push_back(r.ttftMs());
    return percentile(std::move(ttfts), 95.0)
        .value_or(quietNan());
}

double
ServingMetrics::pageUtilization() const
{
    return steps > 0 && pool_pages > 0
               ? static_cast<double>(page_step_sum) /
                     (static_cast<double>(steps) *
                      static_cast<double>(pool_pages))
               : 0.0;
}

double
ServingMetrics::prefixHitRate() const
{
    int64_t touched = prefix_hit_pages + prefix_miss_pages;
    return touched > 0 ? static_cast<double>(prefix_hit_pages) /
                             static_cast<double>(touched)
                       : 0.0;
}

double
ServingMetrics::tbtMeanMs() const
{
    double decode_ms = 0.0;
    int64_t gaps = 0;
    for (const auto &r : requests) {
        // A single-token request has zero decode gaps, so a
        // nonzero decode window would silently inflate the mean
        // of every other request. Such a window is impossible by
        // construction (the request finishes at its prefill
        // step); make the impossibility loud.
        ST_ASSERT(r.output_len > 1 ||
                      r.finish_ms == r.first_token_ms,
                  "single-token request with a decode window");
        decode_ms += r.finish_ms - r.first_token_ms;
        gaps += r.output_len - 1;
    }
    return gaps > 0 ? decode_ms / static_cast<double>(gaps) : 0.0;
}

double
ServingMetrics::latencyPercentileMs(double p) const
{
    std::vector<double> latencies;
    latencies.reserve(requests.size());
    for (const auto &r : requests)
        latencies.push_back(r.latencyMs());
    return percentile(std::move(latencies), p)
        .value_or(quietNan());
}

} // namespace serving
} // namespace streamtensor
