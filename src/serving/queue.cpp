#include "serving/queue.h"

#include <algorithm>

#include "support/error.h"

namespace streamtensor {
namespace serving {

void
RequestQueue::assertCapacityInvariant() const
{
    ST_ASSERT(max_depth_ == 0 ||
                  size_ - max_depth_ <= front_inserts_,
              "queue occupancy beyond capacity not attributable "
              "to readmissions");
}

bool
RequestQueue::push(const Request &request)
{
    if (max_depth_ > 0 && size_ >= max_depth_)
        return false;
    classes_[request.priority].push_back(request);
    ++size_;
    queued_input_tokens_ += request.input_len;
    if (request.deadline_ms > 0.0)
        ++deadlined_;
    max_depth_seen_ = std::max(max_depth_seen_, size_);
    // A bounded push can never be the insert that exceeds
    // capacity.
    ST_ASSERT(max_depth_ == 0 || size_ <= max_depth_,
              "bounded push exceeded queue capacity");
    assertCapacityInvariant();
    return true;
}

void
RequestQueue::pushFront(const Request &request)
{
    classes_[request.priority].push_front(request);
    ++size_;
    ++front_inserts_;
    queued_input_tokens_ += request.input_len;
    if (request.deadline_ms > 0.0)
        ++deadlined_;
    max_depth_seen_ = std::max(max_depth_seen_, size_);
    assertCapacityInvariant();
}

const Request &
RequestQueue::front() const
{
    ST_CHECK(size_ > 0, "front() on an empty queue");
    return classes_.begin()->second.front();
}

Request
RequestQueue::pop()
{
    ST_CHECK(size_ > 0, "pop() on an empty queue");
    auto it = classes_.begin();
    Request r = it->second.front();
    it->second.pop_front();
    if (it->second.empty())
        classes_.erase(it);
    --size_;
    queued_input_tokens_ -= r.input_len;
    if (r.deadline_ms > 0.0)
        --deadlined_;
    return r;
}

std::vector<Request>
RequestQueue::expireBefore(double now_ms)
{
    std::vector<Request> expired;
    // Sweeps run every event-loop round; skip the walk entirely
    // unless something queued can actually expire.
    if (deadlined_ == 0)
        return expired;
    for (auto it = classes_.begin(); it != classes_.end();) {
        auto &fifo = it->second;
        for (auto r = fifo.begin(); r != fifo.end();) {
            if (r->deadline_ms > 0.0 && r->deadline_ms <= now_ms) {
                expired.push_back(*r);
                queued_input_tokens_ -= r->input_len;
                --deadlined_;
                r = fifo.erase(r);
                --size_;
            } else {
                ++r;
            }
        }
        it = fifo.empty() ? classes_.erase(it) : std::next(it);
    }
    return expired;
}

std::vector<Request>
RequestQueue::drainAll()
{
    std::vector<Request> all;
    all.reserve(static_cast<size_t>(size_));
    while (size_ > 0)
        all.push_back(pop());
    return all;
}

std::vector<Request>
RequestQueue::snapshot() const
{
    std::vector<Request> all;
    all.reserve(static_cast<size_t>(size_));
    for (const auto &[priority, fifo] : classes_)
        all.insert(all.end(), fifo.begin(), fifo.end());
    return all;
}

} // namespace serving
} // namespace streamtensor
