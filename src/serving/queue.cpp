#include "serving/queue.h"

#include <algorithm>

#include "support/error.h"

namespace streamtensor {
namespace serving {

bool
RequestQueue::push(const Request &request)
{
    if (max_depth_ > 0 && size_ >= max_depth_)
        return false;
    classes_[request.priority].push_back(request);
    ++size_;
    max_depth_seen_ = std::max(max_depth_seen_, size_);
    return true;
}

void
RequestQueue::pushFront(const Request &request)
{
    classes_[request.priority].push_front(request);
    ++size_;
    max_depth_seen_ = std::max(max_depth_seen_, size_);
}

const Request &
RequestQueue::front() const
{
    ST_CHECK(size_ > 0, "front() on an empty queue");
    return classes_.begin()->second.front();
}

Request
RequestQueue::pop()
{
    ST_CHECK(size_ > 0, "pop() on an empty queue");
    auto it = classes_.begin();
    Request r = it->second.front();
    it->second.pop_front();
    if (it->second.empty())
        classes_.erase(it);
    --size_;
    return r;
}

} // namespace serving
} // namespace streamtensor
