#include "serving/storage_tier.h"

#include <algorithm>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

} // namespace

void
validateStorageTier(const StorageTierProfile &tier)
{
    ST_CHECK(tier.aggregate_mib_s > 0.0 &&
                 tier.per_reader_mib_s > 0.0 && tier.iops > 0.0,
             "storage tier rates must be positive");
    ST_CHECK(tier.first_byte_ms >= 0.0,
             "storage tier latency must be non-negative");
}

StorageTierProfile
gp3Tier()
{
    StorageTierProfile t;
    t.name = "gp3";
    t.aggregate_mib_s = 1000.0;
    t.per_reader_mib_s = 250.0;
    t.iops = 16000.0;
    t.first_byte_ms = 0.5;
    return t;
}

StorageTierProfile
io2Tier()
{
    StorageTierProfile t;
    t.name = "io2";
    t.aggregate_mib_s = 4000.0;
    t.per_reader_mib_s = 1000.0;
    t.iops = 100000.0;
    t.first_byte_ms = 0.2;
    return t;
}

StorageTierProfile
s3Tier()
{
    StorageTierProfile t;
    t.name = "s3";
    t.aggregate_mib_s = 6000.0;
    t.per_reader_mib_s = 85.0;
    t.iops = 5500.0;
    t.first_byte_ms = 30.0;
    return t;
}

std::vector<StorageTierProfile>
allTiers()
{
    return {gp3Tier(), io2Tier(), s3Tier()};
}

double
chunkServiceMs(const StorageTierProfile &tier, int64_t chunk_bytes,
               int64_t readers)
{
    validateStorageTier(tier);
    ST_CHECK(chunk_bytes >= 1, "chunk bytes domain");
    ST_CHECK(readers >= 1, "reader count domain");

    double fair_share =
        tier.aggregate_mib_s / static_cast<double>(readers);
    double bytes_per_ms =
        std::min(tier.per_reader_mib_s, fair_share) * kMiB / 1e3;
    double transfer_ms =
        tier.first_byte_ms +
        static_cast<double>(chunk_bytes) / bytes_per_ms;
    double iops_floor_ms =
        static_cast<double>(readers) * 1e3 / tier.iops;
    return std::max(transfer_ms, iops_floor_ms);
}

} // namespace serving
} // namespace streamtensor
