/**
 * @file
 * Step-cost oracles for the scheduler. ExecutorCostModel is the
 * real thing: each step's cost comes from the PR-3 cycle-accurate
 * simulator through runtime::LlmExecutor's compiled-block cache
 * (bucketing keeps the set of shapes — and therefore compiles —
 * small). AnalyticCostModel is a closed-form stand-in for the
 * deterministic replay/property suites, where thousands of
 * scheduler runs must cost microseconds, not compiles.
 */

#ifndef STREAMTENSOR_SERVING_COST_MODEL_H
#define STREAMTENSOR_SERVING_COST_MODEL_H

#include "runtime/executor.h"
#include "serving/scheduler.h"

namespace streamtensor {
namespace serving {

/** Per-step costs from the compiled + simulated blocks of an
 *  executor (runtime::LlmExecutor::step). */
class ExecutorCostModel : public StepCostModel
{
  public:
    /** @p executor must outlive the model. */
    explicit ExecutorCostModel(runtime::LlmExecutor &executor)
        : executor_(executor)
    {}

    double
    stepMs(const std::vector<runtime::StepGroup> &groups) override;

    /** True once any costed block deadlocked or timed out. */
    bool sawDeadlock() const { return saw_deadlock_; }

    /** Serving-side placement metrics: inter-die crossings of the
     *  most recent step's blocks, and the crossing-attributed
     *  stall time accumulated across every costed step (how much
     *  of the serving run's busy time the die boundaries ate). */
    int64_t lastStepCrossings() const { return last_crossings_; }
    double crossingStallMs() const { return crossing_stall_ms_; }

    /** Largest KV footprint any costed step streamed (Σ count ×
     *  kv_len over its groups) — the accelerator-side KV pressure
     *  high-water mark, comparable against the scheduler's
     *  kv_budget_tokens. */
    int64_t peakKvTokens() const { return peak_kv_tokens_; }

  private:
    runtime::LlmExecutor &executor_;
    bool saw_deadlock_ = false;
    int64_t last_crossings_ = 0;
    double crossing_stall_ms_ = 0.0;
    int64_t peak_kv_tokens_ = 0;
};

/** Closed-form linear cost: per-step trigger cost per shape group
 *  plus per-sequence and per-token terms. Used by the scheduler
 *  test harness — trivially deterministic, hand-computable in
 *  replay assertions, and monotone in batch and shape size. */
struct AnalyticCostOptions
{
    double trigger_ms = 0.25;   ///< per shape group
    double per_seq_ms = 0.5;    ///< per batched sequence
    double per_query_token_ms = 0.02; ///< × shapes.seq_len
    double per_kv_token_ms = 0.005;   ///< × shapes.kv_len
};

class AnalyticCostModel : public StepCostModel
{
  public:
    explicit AnalyticCostModel(AnalyticCostOptions options = {})
        : options_(options)
    {}

    double
    stepMs(const std::vector<runtime::StepGroup> &groups) override;

    /** Stateless closed form: safe for the fleet's parallel step
     *  launching. ExecutorCostModel keeps the default false — it
     *  accumulates crossing-stall time in call order, and a
     *  reordered floating-point sum would break bit-identical
     *  replay. */
    bool concurrentSafe() const override { return true; }

  private:
    AnalyticCostOptions options_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_COST_MODEL_H
