/**
 * @file
 * Host runtime executor: sequences the compiled transformer-block
 * accelerator over all layers and tokens the way the paper runs
 * GPT-2 on the U55C ("this single FPGA accelerator is triggered
 * multiple times with different weight parameters", §6.1), and
 * accounts latency, TTFT, decode speed, and energy.
 *
 * Block execution times come from the cycle-level simulator; each
 * trigger pays the platform's invocation overhead, which amortises
 * as the XRT run queue stays warm on longer generations.
 */

#ifndef STREAMTENSOR_RUNTIME_EXECUTOR_H
#define STREAMTENSOR_RUNTIME_EXECUTOR_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "compiler/compiler.h"
#include "models/block_builder.h"
#include "models/llm_config.h"
#include "sim/simulator.h"

namespace streamtensor {
namespace runtime {

/** End-to-end metrics of one (input, output) request. */
struct LlmRunResult
{
    double ttft_ms = 0.0;
    double decode_ms_per_token = 0.0;
    double total_latency_ms = 0.0;

    /** Decode speed: output tokens over decode time. */
    double tokens_per_s = 0.0;

    double avg_power_w = 0.0;
    double energy_j = 0.0;
    double tokens_per_joule = 0.0;

    /** Per-block simulated latencies (one layer, one trigger). */
    double block_prefill_ms = 0.0;
    double block_decode_ms = 0.0;

    /** A simulation deadlocked (should never happen with LP
     *  sizing; surfaced for the ablation benches). */
    bool deadlock = false;
};

/** One compiled + simulated block shape. */
struct CompiledBlock
{
    compiler::CompileResult compile;
    std::vector<sim::SimResult> sims;

    /** Sequential-group makespan in cycles. */
    double totalCycles() const;

    /** True when any group deadlocked or timed out (either way the
     *  simulated cycles are not a completed run). */
    bool deadlocked() const;
};

/** Compiles transformer blocks on demand and executes requests. */
class LlmExecutor
{
  public:
    LlmExecutor(models::LlmConfig config,
                hls::FpgaPlatform platform,
                compiler::CompileOptions options = {});

    const models::LlmConfig &config() const { return config_; }
    const hls::FpgaPlatform &platform() const { return platform_; }

    /** Compile (or fetch) the block at the given shapes.
     *  Thread-safe: run() warms the prefill and decode entries
     *  concurrently on the pool shared with the simulator
     *  (support::ThreadPool::shared()). */
    const CompiledBlock &block(const models::BlockShapes &shapes);

    /** Run one request end to end. */
    LlmRunResult run(int64_t input_len, int64_t output_len);

  private:
    models::LlmConfig config_;
    hls::FpgaPlatform platform_;
    compiler::CompileOptions options_;
    std::mutex cache_mutex_;
    std::map<std::pair<int64_t, int64_t>,
             std::unique_ptr<CompiledBlock>>
        cache_;
};

} // namespace runtime
} // namespace streamtensor

#endif // STREAMTENSOR_RUNTIME_EXECUTOR_H
