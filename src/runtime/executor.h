/**
 * @file
 * Host runtime executor: sequences the compiled transformer-block
 * accelerator over all layers and tokens the way the paper runs
 * GPT-2 on the U55C ("this single FPGA accelerator is triggered
 * multiple times with different weight parameters", §6.1), and
 * accounts latency, TTFT, decode speed, and energy.
 *
 * Block execution times come from the cycle-level simulator; each
 * trigger pays the platform's invocation overhead, which amortises
 * as the XRT run queue stays warm on longer generations.
 */

#ifndef STREAMTENSOR_RUNTIME_EXECUTOR_H
#define STREAMTENSOR_RUNTIME_EXECUTOR_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "compiler/compiler.h"
#include "models/block_builder.h"
#include "models/llm_config.h"
#include "sim/simulator.h"

namespace streamtensor {
namespace runtime {

/** End-to-end metrics of one (input, output) request. */
struct LlmRunResult
{
    double ttft_ms = 0.0;
    double decode_ms_per_token = 0.0;
    double total_latency_ms = 0.0;

    /** Decode speed: output tokens over decode time. */
    double tokens_per_s = 0.0;

    double avg_power_w = 0.0;
    double energy_j = 0.0;
    double tokens_per_joule = 0.0;

    /** Per-block simulated latencies (one layer, one trigger). */
    double block_prefill_ms = 0.0;
    double block_decode_ms = 0.0;

    /** A simulation deadlocked (should never happen with LP
     *  sizing; surfaced for the ablation benches). */
    bool deadlock = false;

    /** Inter-die crossings of the prefill + decode blocks, and
     *  the crossing-attributed stall time across all layers of
     *  one prefill pass plus one decode step (placement cost
     *  visibility; 0 on zero-cost link models). */
    int64_t crossings = 0;
    double crossing_stall_ms = 0.0;
};

/** One compiled + simulated block shape. */
struct CompiledBlock
{
    compiler::CompileResult compile;
    std::vector<sim::SimResult> sims;

    /** Sequential-group makespan in cycles. */
    double totalCycles() const;

    /** Makespan of @p batch back-to-back triggers of this block
     *  with weights resident (sim::batchedCycles per group). */
    double batchedCycles(int64_t batch) const;

    /** True when any group deadlocked or timed out (either way the
     *  simulated cycles are not a completed run). */
    bool deadlocked() const;

    /** Inter-die channel crossings across the block's groups. */
    int64_t crossings() const;

    /** Stall cycles attributed to inter-die channels across the
     *  block's groups (one trigger). */
    double crossingStallCycles() const;
};

/** One shape group of a serving step: @p count sequences whose
 *  (bucketed) shapes share a compiled block this step. */
struct StepGroup
{
    models::BlockShapes shapes;
    int64_t count = 1;
};

/** Cost of one serving engine step (one full model pass over a
 *  batch of sequences). */
struct StepResult
{
    double step_ms = 0.0;
    bool deadlock = false;

    /** Inter-die crossings of the step's distinct blocks, and the
     *  crossing-attributed stall time across all layers/triggers
     *  of the step. */
    int64_t crossings = 0;
    double crossing_stall_ms = 0.0;

    /** KV tokens the step's triggers stream (Σ count × kv_len
     *  over groups) — the accelerator-side KV pressure of one
     *  step, which the serving layer checks against its paged
     *  pool budget. */
    int64_t kv_tokens = 0;
};

/** Compiles transformer blocks on demand and executes requests. */
class LlmExecutor
{
  public:
    LlmExecutor(models::LlmConfig config,
                hls::FpgaPlatform platform,
                compiler::CompileOptions options = {});

    const models::LlmConfig &config() const { return config_; }
    const hls::FpgaPlatform &platform() const { return platform_; }

    /** Compile (or fetch) the block at the given shapes.
     *  Thread-safe: run() warms the prefill and decode entries
     *  concurrently on the pool shared with the simulator
     *  (support::ThreadPool::shared()). Concurrent calls for the
     *  *same* shapes dedupe against an in-flight set: the first
     *  caller compiles, later callers block until the entry lands,
     *  so compileCount() counts unique shapes even under a
     *  threaded warm race (pinned by the runtime suite). */
    const CompiledBlock &block(const models::BlockShapes &shapes);

    /** Run one request end to end. */
    LlmRunResult run(int64_t input_len, int64_t output_len);

    /** First-token instant of a cold-start prefill gated on weight
     *  residency: layer i's trigger fires at max(end of layer
     *  i-1, @p layer_ready_ms[i]) and runs for one per-layer
     *  prefill slice, so compute overlaps the weight stream and
     *  only layers that outrun their weights stall.
     *  @p layer_ready_ms must have config().layers entries
     *  (serving's WeightStreamPlan::layer_ready_ms, passed as
     *  plain simulated instants so the runtime stays independent
     *  of the serving layer). With all-zero watermarks this equals
     *  start + run().ttft_ms up to summation order. */
    double gatedPrefillEndMs(
        int64_t input_len,
        const std::vector<double> &layer_ready_ms,
        double start_ms = 0.0);

    /** One serving step: execute every shape group's batch through
     *  all layers. Per layer, each group is one accelerator
     *  trigger whose batch members stream back-to-back with
     *  weights resident (CompiledBlock::batchedCycles), so the
     *  weight-streaming cost that dominates decode amortises over
     *  the batch. Warms all distinct shapes concurrently on the
     *  shared pool before costing. */
    StepResult step(const std::vector<StepGroup> &groups);

    /** Compiles performed so far (cache misses). Serving-bucket
     *  regression hook: requests sharing a bucket must not grow
     *  this. */
    int64_t compileCount() const { return compile_count_; }

  private:
    models::LlmConfig config_;
    hls::FpgaPlatform platform_;
    compiler::CompileOptions options_;
    std::mutex cache_mutex_;
    std::condition_variable compile_done_;

    /** Shapes some thread is currently compiling (cache_mutex_).
     *  block() waits on these instead of compiling again. */
    std::set<models::BlockShapes> compiling_;

    std::map<models::BlockShapes, std::unique_ptr<CompiledBlock>>
        cache_;
    std::atomic<int64_t> compile_count_{0};
};

} // namespace runtime
} // namespace streamtensor

#endif // STREAMTENSOR_RUNTIME_EXECUTOR_H
