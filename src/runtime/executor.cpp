#include "runtime/executor.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/thread_pool.h"

namespace streamtensor {
namespace runtime {

namespace {

/** Invocation overhead amortises as the XRT run queue stays warm
 *  (more tokens in flight -> cheaper trigger). */
double
invocationOverheadMs(const hls::FpgaPlatform &platform,
                     int64_t tokens_in_flight)
{
    double amort = 0.55 + 0.45 / (1.0 + tokens_in_flight / 96.0);
    return platform.invocation_overhead_us * amort / 1e3;
}

} // namespace

double
CompiledBlock::totalCycles() const
{
    double cycles = 0.0;
    for (const auto &s : sims)
        cycles += s.cycles;
    return cycles;
}

double
CompiledBlock::batchedCycles(int64_t batch) const
{
    double cycles = 0.0;
    for (const auto &s : sims)
        cycles += sim::batchedCycles(s, batch);
    return cycles;
}

bool
CompiledBlock::deadlocked() const
{
    for (const auto &s : sims)
        if (s.deadlock || s.timed_out)
            return true;
    return false;
}

int64_t
CompiledBlock::crossings() const
{
    int64_t crossings = 0;
    for (const auto &s : sims)
        crossings += s.crossing_channels;
    return crossings;
}

double
CompiledBlock::crossingStallCycles() const
{
    double cycles = 0.0;
    for (const auto &s : sims)
        cycles += s.crossing_stall_cycles;
    return cycles;
}

LlmExecutor::LlmExecutor(models::LlmConfig config,
                         hls::FpgaPlatform platform,
                         compiler::CompileOptions options)
    : config_(std::move(config)), platform_(std::move(platform)),
      options_(std::move(options))
{}

const CompiledBlock &
LlmExecutor::block(const models::BlockShapes &shapes)
{
    {
        std::unique_lock<std::mutex> lock(cache_mutex_);
        while (true) {
            auto it = cache_.find(shapes);
            if (it != cache_.end())
                return *it->second;
            // Someone else is already compiling these shapes:
            // wait for their insert rather than compiling a
            // duplicate (the loser's work — a full compile +
            // simulation — used to be discarded, and
            // compileCount() double-counted the shape).
            if (compiling_.count(shapes) == 0)
                break;
            compile_done_.wait(lock);
        }
        compiling_.insert(shapes);
    }

    // Compile + simulate outside the lock so concurrent *distinct*
    // shapes overlap (run() warms prefill and decode together).
    ++compile_count_;
    auto compiled = std::make_unique<CompiledBlock>();
    try {
        linalg::Graph graph =
            models::buildTransformerBlock(config_, shapes);
        compiled->compile = compiler::compile(std::move(graph),
                                              platform_, options_);
        compiled->sims = sim::simulateAll(
            compiled->compile.design.components);
    } catch (...) {
        // Unblock waiters before propagating; they will retry the
        // compile themselves.
        std::lock_guard<std::mutex> lock(cache_mutex_);
        compiling_.erase(shapes);
        compile_done_.notify_all();
        throw;
    }

    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto [pos, inserted] =
        cache_.emplace(shapes, std::move(compiled));
    ST_ASSERT(inserted,
              "a duplicate compile slipped past the in-flight "
              "guard");
    compiling_.erase(shapes);
    compile_done_.notify_all();
    return *pos->second;
}

double
LlmExecutor::gatedPrefillEndMs(
    int64_t input_len, const std::vector<double> &layer_ready_ms,
    double start_ms)
{
    ST_CHECK(input_len >= 1, "request lengths must be positive");
    ST_CHECK(static_cast<int64_t>(layer_ready_ms.size()) ==
                 config_.layers,
             "residency watermark must cover every layer");
    const CompiledBlock &prefill =
        block(models::prefillShapes(input_len));
    double freq_hz = platform_.freq_mhz * 1e6;
    double per_layer_ms =
        prefill.totalCycles() / freq_hz * 1e3 +
        invocationOverheadMs(platform_, 1);
    double t = start_ms;
    for (double ready : layer_ready_ms)
        t = std::max(t, ready) + per_layer_ms;
    return t;
}

LlmRunResult
LlmExecutor::run(int64_t input_len, int64_t output_len)
{
    ST_CHECK(input_len >= 1 && output_len >= 1,
             "request lengths must be positive");
    LlmRunResult result;
    double freq_hz = platform_.freq_mhz * 1e6;
    int64_t mid_kv = input_len + std::max<int64_t>(output_len / 2,
                                                   1);

    // Warm the two block shapes of this request concurrently on
    // the pool shared with the simulator's per-group parallelism
    // (each block() below is then a cache hit).
    const models::BlockShapes request_shapes[2] = {
        models::prefillShapes(input_len),
        models::decodeShapes(mid_kv)};
    support::ThreadPool::shared().run(2, [&](int64_t i) {
        (void)block(request_shapes[i]);
    });

    // --- Prefill: one trigger per layer at seq = input length.
    const CompiledBlock &prefill =
        block(models::prefillShapes(input_len));
    result.block_prefill_ms =
        prefill.totalCycles() / freq_hz * 1e3;
    result.deadlock |= prefill.deadlocked();

    auto overhead_ms = [&](int64_t tokens_in_flight) {
        return invocationOverheadMs(platform_, tokens_in_flight);
    };
    result.ttft_ms =
        config_.layers *
        (result.block_prefill_ms + overhead_ms(1));

    // --- Decode: simulate at the run's mean context length.
    const CompiledBlock &decode =
        block(models::decodeShapes(mid_kv));
    result.block_decode_ms = decode.totalCycles() / freq_hz * 1e3;
    result.deadlock |= decode.deadlocked();

    result.decode_ms_per_token =
        config_.layers *
        (result.block_decode_ms + overhead_ms(output_len));

    // Placement visibility: crossings of both compiled blocks and
    // the crossing-attributed stall of one prefill pass plus one
    // decode step across all layers.
    result.crossings = prefill.crossings() + decode.crossings();
    result.crossing_stall_ms =
        config_.layers *
        (prefill.crossingStallCycles() +
         decode.crossingStallCycles()) /
        freq_hz * 1e3;
    double decode_total_ms =
        result.decode_ms_per_token * output_len;
    result.total_latency_ms = result.ttft_ms + decode_total_ms;
    result.tokens_per_s = output_len / decode_total_ms * 1e3;

    // --- Energy: idle floor plus dynamic compute and HBM shares.
    double decode_flops = config_.blockFlops(1, mid_kv) *
                          config_.layers;
    double util_compute =
        decode_flops /
        (result.decode_ms_per_token / 1e3) /
        (platform_.peakInt8Tops() * 1e12);
    double bytes_per_token =
        static_cast<double>(config_.blockParamBytes()) *
        config_.layers;
    double util_bw = bytes_per_token /
                     (result.decode_ms_per_token / 1e3) /
                     (platform_.memory_bandwidth_gbps * 1e9);
    util_compute = std::clamp(util_compute, 0.0, 1.0);
    util_bw = std::clamp(util_bw, 0.0, 1.0);
    result.avg_power_w =
        platform_.tdp_watts *
        (platform_.idle_power_fraction + 0.35 * util_compute +
         0.20 * util_bw);
    result.energy_j =
        result.avg_power_w * result.total_latency_ms / 1e3;
    result.tokens_per_joule = output_len / result.energy_j;
    return result;
}

StepResult
LlmExecutor::step(const std::vector<StepGroup> &groups)
{
    ST_CHECK(!groups.empty(), "step needs at least one group");

    // Merge duplicate shapes so {{S,1},{S,1}} costs like {{S,2}}:
    // one pipeline fill plus steady intervals, one trigger, one
    // compile. Map order also makes the cost independent of the
    // caller's group order.
    std::map<models::BlockShapes, int64_t> merged;
    int64_t total_seqs = 0;
    for (const auto &g : groups) {
        ST_CHECK(g.count >= 1, "group count must be positive");
        merged[g.shapes] += g.count;
        total_seqs += g.count;
    }
    std::vector<models::BlockShapes> shapes;
    shapes.reserve(merged.size());
    for (const auto &[s, count] : merged)
        shapes.push_back(s);

    // Warm every shape of this step concurrently on the shared
    // pool (each block() below is then a cache hit).
    support::ThreadPool::shared().run(
        static_cast<int64_t>(shapes.size()),
        [&](int64_t i) { (void)block(shapes[i]); });

    // Per layer, each group is one trigger: its batch streams
    // through the block pipeline back-to-back with the layer's
    // weights resident, so members past the first cost only the
    // steady-state interval. Overhead amortises with the whole
    // step's sequences in flight.
    StepResult result;
    double freq_hz = platform_.freq_mhz * 1e6;
    for (const auto &[s, count] : merged) {
        const CompiledBlock &blk = block(s);
        result.deadlock = result.deadlock || blk.deadlocked();
        result.kv_tokens += count * s.kv_len;
        double trigger_ms =
            blk.batchedCycles(count) / freq_hz * 1e3 +
            invocationOverheadMs(platform_, total_seqs);
        result.step_ms += config_.layers * trigger_ms;
        result.crossings += blk.crossings();
        result.crossing_stall_ms += config_.layers *
                                    blk.crossingStallCycles() /
                                    freq_hz * 1e3;
    }
    return result;
}

} // namespace runtime
} // namespace streamtensor
